open Repdir_key
open Repdir_util
open Repdir_quorum
open Repdir_txn
open Repdir_rep
module Gi = Repdir_gapmap.Gapmap_intf
module History = Repdir_audit.History
module Member = Repdir_member.Member
module Cache = Repdir_cache.Cache

type value = string

exception Unavailable of string

exception Deadline_exceeded of string

(* Client-side retry budget: a token bucket shared by all of one client's
   operations. Retries spend a token; successes earn a fraction back. Under
   occasional failures the bucket stays near its cap and every retry is
   granted; under sustained unavailability it drains, and the client fails
   fast instead of joining the retry storm that turns a transient brownout
   into a metastable outage (the goodput-collapse mode: servers spending all
   capacity on retries of work whose clients have given up). *)
module Retry_budget = struct
  type t = { mutable tokens : float; cap : float; earn : float }

  let create ?(cap = 10.0) ?(earn = 0.1) () =
    if cap < 1.0 then invalid_arg "Retry_budget.create: cap must be at least 1.0";
    if earn <= 0.0 then invalid_arg "Retry_budget.create: earn must be positive";
    { tokens = cap; cap; earn }

  let tokens b = b.tokens

  let try_spend b =
    if b.tokens >= 1.0 then begin
      b.tokens <- b.tokens -. 1.0;
      true
    end
    else false

  let earn b = b.tokens <- Float.min b.cap (b.tokens +. b.earn)
end

module Int_set = Set.Make (Int)

(* Per-transaction session: which representatives the transaction has
   operated on, and each one's incarnation number at first contact. A
   participant that restarts mid-transaction has lost the transaction's
   volatile state — locks, undo records, possibly unforced log records — so
   any evidence of a restart (a changed incarnation) must fail the
   transaction rather than let a half-remembered participant vote.
   [prepared] are members whose two-phase-commit vote was already collected
   by a piggybacked [B_prepare]; [finished] are members released in-round by
   [B_finish_readonly] — both are skipped by the termination rounds. *)
type session = {
  mutable reps : Int_set.t;
  mutable prepared : Int_set.t;
  mutable finished : Int_set.t;
  incarnations : (int, int) Hashtbl.t;
}

(* Sharding hook. The multi-group router (lib/shard) attaches one of these
   to each per-group suite; the closures read the router's current shard map
   so this module never depends on the shard library. [shard_epoch] stamps
   every representative call (fenced server-side with
   [Rep.shard_fence_check], exactly parallel to the membership fence);
   [shard_label] names the owned range and group in failure messages so a
   sharded campaign's errors are attributable. *)
type shard_info = { shard_label : unit -> string; shard_epoch : unit -> int }

type t = {
  config : Config.t;
  (* Dynamic membership: when set, quorums are collected from the record's
     view(s) instead of [config], every representative call is stamped with
     the record's epoch (and fenced server-side), and a [Rep.Stale_epoch]
     rejection makes the suite adopt the newer record it carries. [None]
     preserves the static seed behaviour exactly — no stamping, no fencing,
     identical quorum selection and RNG consumption. *)
  mutable membership : Member.record option;
  (* Sharding: when set, every representative call is additionally stamped
     with the router's shard-map epoch, quorum failures name the shard, and
     the cache epoch folds the shard epoch in. [None] is the seed (and
     single-group) behaviour, byte-identical. *)
  shard : shard_info option;
  picker : Picker.strategy;
  transport : Transport.t;
  txns : Txn.Manager.t;
  rng : Rng.t;
  touched : (Txn.id, session) Hashtbl.t;
  two_phase : bool;
  coordinator : Coordinator.t;
  batch_depth : int;
  sync : Repdir_sync.Sync.t option;
  batching : bool;
  timers : Rep.timers option;
  notice_window : float;
  (* Deferred termination notices, per representative, oldest first. They
     piggyback on the next message to that representative (see [call]); the
     flush timer is the fallback for idle periods, and the representatives'
     lease/termination protocol is the backstop if even that is lost. *)
  pending : (int, Rep.notice list ref) Hashtbl.t;
  mutable flush_armed : bool;
  recorder : Repdir_audit.History.recorder option;
  (* Deadline propagation: each operation's budget in time units, converted
     to an absolute deadline when the operation starts and stamped on every
     RPC it issues ([Rep.reject_expired] server-side). None = no stamping,
     the seed behaviour. Needs [timers]. *)
  op_deadline : float option;
  (* Hedging: when set (the floor delay), quorum lookups race their slowest
     quorum member against a spare replica after a p99-derived delay.
     Requires a [Picker.Healthy] picker (the EWMA scores choose the hedge
     target and the spare) and a transport with a race primitive. *)
  hedge : float option;
  mutable hedged : int;  (* hedge backups actually launched *)
  (* Version-validated client cache (a weak representative). When set, the
     quorum read path collects version tags instead of payloads and fetches
     the full entry from at most one member, only on a miss or mismatch; a
     hit plus quorum version agreement is a zero-payload round. [None] is
     the seed read path, byte-identical. *)
  cache : Cache.t option;
  (* Cache stores staged per transaction and applied only at commit: a line
     learned from a transaction's own uncommitted write must die with an
     abort, or its (aborted) version number could later collide with a
     committed write of the same version and serve the wrong payload. Each
     staged update carries the suite epoch at stage time: a line proven
     current against old-view quorums must not be installed as if learned
     under a view adopted between the operation and the commit. *)
  pending_cache : (Txn.id, (int * cache_update) list ref) Hashtbl.t;
}

and cache_update =
  | C_store of Bound.t * Cache.line
  | C_invalidate_range of Bound.t * Bound.t

let create ?(picker = Picker.Random) ?(seed = 1L) ?(two_phase = false)
    ?coordinator ?(batch_depth = 1) ?sync ?(batching = false) ?timers
    ?(notice_window = 5.0) ?recorder ?membership ?shard ?op_deadline ?hedge ?cache
    ~config ~transport ~txns () =
  if Config.n_reps config <> transport.Transport.n_reps then
    invalid_arg "Suite.create: config and transport disagree on representative count";
  if batch_depth < 1 then invalid_arg "Suite.create: batch_depth must be at least 1";
  (match membership with
  | Some m when Config.n_reps (Member.current m).Member.config <> transport.Transport.n_reps
    ->
      invalid_arg "Suite.create: membership record and transport disagree on slot count"
  | _ -> ());
  (match op_deadline with
  | Some d when d <= 0.0 -> invalid_arg "Suite.create: op_deadline must be positive"
  | _ -> ());
  (match hedge with
  | Some _ -> (
      match picker with
      | Picker.Healthy _ -> ()
      | _ -> invalid_arg "Suite.create: hedging needs a Picker.Healthy strategy")
  | None -> ());
  let coordinator =
    match coordinator with Some c -> c | None -> Coordinator.create ()
  in
  {
    config;
    membership;
    shard;
    picker;
    transport;
    txns;
    rng = Rng.create seed;
    touched = Hashtbl.create 16;
    two_phase;
    coordinator;
    batch_depth;
    sync;
    batching;
    timers;
    notice_window;
    pending = Hashtbl.create 8;
    flush_armed = false;
    recorder;
    op_deadline;
    hedge;
    hedged = 0;
    cache;
    pending_cache = Hashtbl.create 8;
  }

(* --- history recording ---------------------------------------------------------- *)

(* The attached recorder (if any) sees every single-key operation with its
   observed result, stamped at operation completion. Completion lies inside
   the strict-2PL window for the touched key — after its lock was granted,
   before commit releases it — so the [prim-completion, transaction-finish]
   interval always contains a valid serialization point and the checker's
   real-time precedence stays sound. *)
let record_prim t ~txn prim =
  match t.recorder with None -> () | Some r -> History.record r ~txn prim

(* Outcome classification when the commit path raised. Under two-phase
   commit the client is the coordinator, so its own decision log is
   authoritative: no decision or an abort decision means presumed abort
   (clean failure, no effects anywhere); a commit decision with a
   client-visible failure means the effects land through the termination
   protocol at some unknown later time — ambiguous. Without two-phase
   commit the best-effort commit round makes every unclear outcome
   ambiguous. *)
let failed_commit_status t txn =
  if t.two_phase then
    match Coordinator.decision t.coordinator txn with
    | Some Coordinator.Committed -> `Ambiguous
    | Some Coordinator.Aborted | None -> `Failed
  else `Ambiguous

let record_finish t ~txn status =
  match t.recorder with None -> () | Some r -> History.finish r ~txn status

let config t = t.config
let membership t = t.membership
let epoch t = match t.membership with None -> 0 | Some m -> Member.epoch_of m
let shard_epoch t = match t.shard with None -> 0 | Some si -> si.shard_epoch ()

(* What failure messages append so sharded campaign errors name the range
   and group that failed; empty (message-identical to the seed) when the
   suite is unsharded. *)
let shard_suffix t =
  match t.shard with None -> "" | Some si -> " at " ^ si.shard_label ()

(* A membership change invalidates the whole cache: version tags prove a
   line current only against quorums of the view that produced it, so lines
   learned under an older epoch must not survive into the new one. The same
   argument applies to a shard-map change — a migrated range's lines were
   proven current against the *old owning group's* quorums — so the cache
   epoch folds both counters together: either advancing flushes every line.
   Membership epochs stay far below the shift in practice (each
   reconfiguration adds 2). *)
let cache_epoch t = epoch t lor (shard_epoch t lsl 20)

let cache_sync_epoch t =
  match t.cache with
  | None -> ()
  | Some c -> Cache.sync_epoch c ~epoch:(cache_epoch t)

(* The router's eager-flush hook when it adopts a newer shard map: [find]
   and [store] would flush lazily anyway (they compare the line epoch), but
   a migrated range must never even *hold* lines cached under the old
   owning group once the router knows about the move. *)
let sync_cache_epoch = cache_sync_epoch

let set_membership t m =
  if Config.n_reps (Member.current m).Member.config <> t.transport.Transport.n_reps then
    invalid_arg "Suite.set_membership: record and transport disagree on slot count";
  t.membership <- Some m;
  cache_sync_epoch t

(* Adopt the configuration a fencing representative handed back — but only
   forward: a delayed rejection must never roll the suite's view back. *)
let adopt t record =
  match Member.decode record with
  | Error _ -> ()
  | Ok m -> (
      match t.membership with
      | Some cur when Member.epoch_of cur >= Member.epoch_of m -> ()
      | Some _ | None ->
          t.membership <- Some m;
          cache_sync_epoch t)

let transport t = t.transport
let coordinator t = t.coordinator
let batching t = t.batching
let sync t = t.sync
let hedged_count t = t.hedged
let cache t = t.cache
let cache_counters t = Option.map Cache.counters t.cache

(* --- staged cache updates ------------------------------------------------------ *)

let cache_stage t txn upd =
  match t.cache with
  | None -> ()
  | Some _ ->
      let l =
        match Hashtbl.find_opt t.pending_cache txn with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace t.pending_cache txn l;
            l
      in
      l := (cache_epoch t, upd) :: !l

(* Apply a committed transaction's staged lines, in operation order. Every
   line describes committed state as of this transaction's serialization
   point: reads were validated (or fetched) under quorum read locks, writes
   are the transaction's own now-committed effects. Stores are applied only
   if the suite still runs the epoch they were staged under — a membership
   adopted mid-transaction (set_membership / adopt) must not inherit lines
   proven current only against the old view's quorums, or they would
   survive the flush sync_epoch guarantees. Invalidations are conservative
   and always safe to apply. *)
let cache_apply t txn =
  match t.cache with
  | None -> ()
  | Some c -> (
      match Hashtbl.find_opt t.pending_cache txn with
      | None -> ()
      | Some l ->
          Hashtbl.remove t.pending_cache txn;
          let now = cache_epoch t in
          List.iter
            (fun (staged_epoch, upd) ->
              match upd with
              | C_store (b, line) ->
                  if staged_epoch = now then Cache.store c ~epoch:now b line
              | C_invalidate_range (lo, hi) -> Cache.invalidate_range c ~lo ~hi)
            (List.rev !l))

let cache_drop t txn = Hashtbl.remove t.pending_cache txn

(* --- deferred termination notices --------------------------------------------- *)

let enqueue_notice t i n =
  let l =
    match Hashtbl.find_opt t.pending i with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace t.pending i l;
        l
  in
  l := !l @ [ n ]

let take_notices t i =
  match Hashtbl.find_opt t.pending i with
  | Some l when !l <> [] ->
      let ns = !l in
      l := [];
      ns
  | _ -> []

let requeue_notices t i ns =
  if ns <> [] then
    match Hashtbl.find_opt t.pending i with
    | Some l -> l := ns @ !l
    | None -> Hashtbl.replace t.pending i (ref ns)

let pending_notice_count t =
  Hashtbl.fold (fun _ l acc -> acc + List.length !l) t.pending 0

(* --- wire-byte accounting ------------------------------------------------------ *)

(* A fixed serialization model charging [Transport.bytes_count] with the
   estimated request and reply bytes of every message the suite puts on the
   wire. The absolute numbers are a model (nothing here really serializes);
   what matters is that the model is applied identically with and without
   the client cache, so the bytes/op delta isolates exactly what the cache
   changes: full values versus version tags on the read path. *)
module Wire = struct
  let header = 16 (* per-message envelope: src/dst/txn/request id *)
  let ver = 8
  let tag = ver + 1 (* version + presence discriminant *)
  let bound = function
    | Bound.Key k -> String.length k + 2
    | Bound.Low | Bound.High -> 1

  let value v = String.length v + 4

  let lookup_r = function
    | Gi.Present { value = v; _ } -> 1 + ver + value v
    | Gi.Absent _ -> 1 + ver

  let neighbor (n : Gi.neighbor) = bound n.Gi.key + ver + ver
  let chain ns = List.fold_left (fun a n -> a + neighbor n) 1 ns

  let op = function
    | Rep.B_lookup b | Rep.B_validate b | Rep.B_predecessor b | Rep.B_successor b ->
        1 + bound b
    | Rep.B_predecessor_chain (b, _) | Rep.B_successor_chain (b, _) -> 1 + bound b + 4
    | Rep.B_insert (k, _, v) | Rep.B_insert_if_absent (k, _, v) ->
        1 + bound (Bound.Key k) + ver + value v
    | Rep.B_coalesce (lo, hi, _) -> 1 + bound lo + bound hi + ver
    | Rep.B_prepare _ -> 1 + 4
    | Rep.B_finish_readonly -> 1

  let result = function
    | Rep.R_lookup l -> lookup_r l
    | Rep.R_tag _ -> tag
    | Rep.R_neighbor n -> neighbor n
    | Rep.R_chain ns -> chain ns
    | Rep.R_unit | Rep.R_inserted _ | Rep.R_finished _ -> 1
    | Rep.R_removed _ -> 4

  let msg body = header + body
  let ops l = List.fold_left (fun a o -> a + op o) 0 l
  let results l = List.fold_left (fun a r -> a + result r) 0 l

  (* Termination and notice traffic: a txn id plus a discriminant. *)
  let control = 9
end

let acct t n = Transport.add_bytes t.transport n

(* A termination-round message ([Transport.send]) and its short ack. *)
let acct_send t body = acct t (Wire.msg body + Wire.msg 1)

(* Deliver every queued notice in a dedicated message per representative.
   Failures re-queue: notices are idempotent (duplicate commit/abort
   delivery is a no-op) and the termination protocol settles any
   transaction whose notice never lands. *)
let flush_notices t =
  Hashtbl.iter
    (fun i l ->
      match !l with
      | [] -> ()
      | ns -> (
          l := [];
          acct_send t (Wire.control * List.length ns);
          match Transport.send t.transport i (fun rep -> Rep.deliver_notices rep ns) with
          | Ok () -> ()
          | Error _ -> requeue_notices t i ns
          | exception _ -> requeue_notices t i ns))
    t.pending

let rec arm_flush t =
  match t.timers with
  | Some timers when (not t.flush_armed) && t.notice_window > 0. ->
      t.flush_armed <- true;
      timers.Rep.after t.notice_window (fun () ->
          t.flush_armed <- false;
          flush_notices t;
          (* A failed delivery re-queues; keep the timer alive until the
             queues drain. *)
          if pending_notice_count t > 0 then arm_flush t)
  | _ -> ()
let sync_counters t = Option.map Repdir_sync.Sync.counters t.sync

let set_sync_enabled t on =
  match t.sync with
  | Some s -> Repdir_sync.Sync.set_enabled s on
  | None -> invalid_arg "Suite.set_sync_enabled: suite has no sync actor attached"

type delete_report = {
  was_present : bool;
  removed_per_rep : (int * int) array;
  repair_inserts : int;
  ghosts_deleted : int;
  pred : Bound.t;
  succ : Bound.t;
}

(* --- per-operation context --------------------------------------------------- *)

(* An operation context carries the transaction and the set of
   representatives found unreachable during this operation; those are
   excluded from quorum re-selection when the operation body is re-run.
   [final] marks a single-operation implicit transaction: the operation's
   last write round is the transaction's last round, so the batched suite
   may piggyback the two-phase-commit prepare (or a read-only finish) on
   it. *)
type ctx = {
  txn : Txn.id;
  mutable excluded : Int_set.t;
  suite : t;
  final : bool;
  (* Absolute deadline for this operation (client clock), stamped on every
     RPC and checked before each body re-run. None = no deadline. *)
  deadline : float option;
}

let fanout ctx f arr = ctx.suite.transport.Transport.fanout.Transport.map f arr

let restarted i =
  Unavailable (Printf.sprintf "representative %d restarted mid-transaction" i)

let session_of ctx =
  let t = ctx.suite in
  match Hashtbl.find_opt t.touched ctx.txn with
  | Some s -> s
  | None ->
      let s =
        {
          reps = Int_set.empty;
          prepared = Int_set.empty;
          finished = Int_set.empty;
          incarnations = Hashtbl.create 8;
        }
      in
      Hashtbl.replace t.touched ctx.txn s;
      s

let call ctx i f =
  let t = ctx.suite in
  (* Epoch fencing: stamp the request with the suite's current membership
     epoch, checked server-side before the operation runs. Only operation
     work goes through [call]; the termination rounds (prepare, commit,
     abort, outcome queries) use [Transport.send] directly and are
     deliberately unfenced — a prepared transaction must be able to settle
     across a configuration change. *)
  let f =
    match t.membership with
    | None -> f
    | Some m ->
        let e = Member.epoch_of m in
        fun rep ->
          Rep.fence_check rep ~epoch:e;
          f rep
  in
  (* Shard-map fencing, exactly parallel: requests carry the router's shard
     epoch, and a representative that has installed a newer map refuses the
     operation (the range may no longer be served here). Unsharded suites
     stamp nothing, keeping the seed path identical. *)
  let f =
    match t.shard with
    | None -> f
    | Some si ->
        let e = si.shard_epoch () in
        fun rep ->
          Rep.shard_fence_check rep ~epoch:e;
          f rep
  in
  (* Deadline propagation: the operation's absolute deadline rides on every
     RPC; a representative whose clock says it has passed refuses the work
     instead of executing it ([Rep.Deadline_exceeded] unwinds the operation
     like any other abort). The budget decrements across hops for free
     because the deadline is absolute while time keeps advancing. Like the
     fence, only operation work is stamped — termination traffic must settle
     no matter how late it runs. *)
  let f =
    match ctx.deadline with
    | None -> f
    | Some d ->
        fun rep ->
          Rep.reject_expired rep ~deadline:d;
          f rep
  in
  let s = session_of ctx in
  s.reps <- Int_set.add i s.reps;
  let seen = t.transport.Transport.incarnation i in
  (match Hashtbl.find_opt s.incarnations i with
  | None -> Hashtbl.replace s.incarnations i seen
  | Some first when first <> seen -> raise (restarted i)
  | Some _ -> ());
  let check_same_incarnation () =
    match Hashtbl.find_opt s.incarnations i with
    | Some first when t.transport.Transport.incarnation i <> first -> raise (restarted i)
    | _ -> ()
  in
  (* Ride any deferred termination notices for this representative on the
     message we are sending anyway (commit pipelining): they are applied
     server-side before the operation, so locks they release are available
     to it. A transport failure re-queues them — delivery is idempotent, so
     over-delivering on an ambiguous failure is safe. *)
  let notices = take_notices t i in
  let f =
    if notices = [] then f
    else
      fun rep ->
      Rep.deliver_notices rep notices;
      f rep
  in
  match Transport.call_exn t.transport i f with
  | r ->
      (* The participant may have restarted while the call was in flight: an
         at-most-once retransmission then re-executed against an amnesiac
         incarnation that knows nothing of the transaction's earlier ops. *)
      check_same_incarnation ();
      r
  | exception (Transport.Rpc_failed _ as e) ->
      requeue_notices t i notices;
      check_same_incarnation ();
      raise e
  | exception e ->
      (* Same window: a re-execution against post-recovery state can fail in
         arbitrary ways (missing endpoints, spurious lock conflicts). The
         restart, not the symptom, is the real error. *)
      check_same_incarnation ();
      raise e

(* One message, many representative ops (the §4 observation that calls
   "batch into few messages"). *)
let exec ctx i ops =
  let t = ctx.suite in
  acct t (Wire.msg (Wire.ops ops));
  let rs = call ctx i (fun rep -> Rep.execute rep ~txn:ctx.txn ops) in
  acct t (Wire.msg (Wire.results rs));
  rs

(* Direct (unbatched) representative calls, wrapped so every site charges its
   request and reply to the byte model. *)
let rep_lookup ctx i bound =
  let t = ctx.suite in
  acct t (Wire.msg (Wire.op (Rep.B_lookup bound)));
  let r = call ctx i (fun rep -> Rep.lookup rep ~txn:ctx.txn bound) in
  acct t (Wire.msg (Wire.lookup_r r));
  r

let rep_validate ctx i bound =
  let t = ctx.suite in
  acct t (Wire.msg (Wire.op (Rep.B_validate bound)));
  let r =
    call ctx i (fun rep ->
        match Rep.validate_versions rep ~txn:ctx.txn [ bound ] with
        | [ t ] -> t
        | _ -> assert false)
  in
  acct t (Wire.msg Wire.tag);
  r

let rep_neighbor ctx i ~pred bound =
  let t = ctx.suite in
  acct t
    (Wire.msg (Wire.op (if pred then Rep.B_predecessor bound else Rep.B_successor bound)));
  let r =
    call ctx i (fun rep ->
        if pred then Rep.predecessor rep ~txn:ctx.txn bound
        else Rep.successor rep ~txn:ctx.txn bound)
  in
  acct t (Wire.msg (Wire.neighbor r));
  r

let rep_chain ctx i ~pred bound ~depth =
  let t = ctx.suite in
  acct t
    (Wire.msg
       (Wire.op
          (if pred then Rep.B_predecessor_chain (bound, depth)
           else Rep.B_successor_chain (bound, depth))));
  let r =
    call ctx i (fun rep ->
        if pred then Rep.predecessor_chain rep ~txn:ctx.txn bound ~depth
        else Rep.successor_chain rep ~txn:ctx.txn bound ~depth)
  in
  acct t (Wire.msg (Wire.chain r));
  r

let rep_insert ctx i key ver value =
  let t = ctx.suite in
  acct t (Wire.msg (Wire.op (Rep.B_insert (key, ver, value))) + Wire.msg 1);
  call ctx i (fun rep -> Rep.insert rep ~txn:ctx.txn key ver value)

let rep_coalesce ctx i ~lo ~hi ver =
  let t = ctx.suite in
  acct t (Wire.msg (Wire.op (Rep.B_coalesce (lo, hi, ver))) + Wire.msg 4);
  call ctx i (fun rep -> Rep.coalesce rep ~txn:ctx.txn ~lo ~hi ver)

let available ctx i =
  ctx.suite.transport.Transport.is_up i && not (Int_set.mem i ctx.excluded)

(* Which view failed, for debuggable nemesis logs during a transition: a
   joint record has two views, and "cannot collect a write quorum" alone
   does not say whether the old or the new epoch is starved. *)
let quorum_failure t m ~read k =
  let v = List.nth (Member.views m) k in
  Unavailable
    (Format.asprintf "cannot collect a %s quorum in epoch %d (%a)%s"
       (if read then "read" else "write")
       v.Member.epoch Member.pp_view v (shard_suffix t))

let collect_read_quorum ctx =
  let t = ctx.suite in
  match t.membership with
  | None -> (
      match Picker.read_quorum t.picker t.rng t.config ~available:(available ctx) with
      | Some q -> q
      | None -> raise (Unavailable ("cannot collect a read quorum" ^ shard_suffix t)))
  | Some m -> (
      match
        Picker.collect_joint t.picker t.rng
          (Member.targets m ~read:true)
          ~available:(available ctx)
      with
      | Ok q -> q
      | Error k -> raise (quorum_failure t m ~read:true k))

let collect_write_quorum ctx =
  let t = ctx.suite in
  (* Batched mode prefers members the transaction already touched: the
     piggybacked prepare then covers the whole participant set and the
     read-only members need no termination round of their own. *)
  let prefer =
    if t.batching then
      match Hashtbl.find_opt t.touched ctx.txn with
      | Some s -> fun i -> Int_set.mem i s.reps
      | None -> fun _ -> false
    else fun _ -> false
  in
  match t.membership with
  | None -> (
      match
        Picker.write_quorum ~prefer t.picker t.rng t.config ~available:(available ctx)
      with
      | Some q -> q
      | None -> raise (Unavailable ("cannot collect a write quorum" ^ shard_suffix t)))
  | Some m -> (
      match
        Picker.collect_joint ~prefer t.picker t.rng
          (Member.targets m ~read:false)
          ~available:(available ctx)
      with
      | Ok q -> q
      | Error k -> raise (quorum_failure t m ~read:false k))

(* --- DirSuiteLookup (Figure 8) ------------------------------------------------ *)

(* Hedged quorum fan-out: race the quorum member with the worst smoothed
   latency against a spare replica, started after a p99-derived delay — the
   gray-failure mitigation for the one case quorum re-selection cannot help
   with: a member that is slow but not slow enough to be excluded, stalling
   every round it joins. Vote-sound by construction: the spare must carry at
   least as many votes as the member it stands in for, so whichever branch
   answers, the replies always cover a full read quorum. Both branches go
   through [call], so both representatives join the transaction's session
   and are released by its termination round; a late losing reply re-executes
   idempotently against locks the session still holds and is discarded
   client-side. Active only when all the machinery is present: a hedge
   window, a transport race primitive, a [Healthy] picker (for the scores),
   a clock, and static membership (joint-quorum vote accounting would need
   per-view spares). NB for callers: when the hedge fires and the spare wins,
   the slow member's slot in the result array holds the *spare's* reply — a
   caller that must know which representative produced a reply has to pair it
   inside [callf] ([fun i -> (i, ...)]); indexing [quorum] is not sound. *)
let hedged_fanout ctx quorum callf =
  let t = ctx.suite in
  match (t.hedge, t.transport.Transport.race, t.picker, t.timers, t.membership) with
  | Some floor, Some race, Picker.Healthy health, Some _, None when Array.length quorum > 0
    ->
      let slowest = ref quorum.(0) in
      Array.iter
        (fun i ->
          if Picker.Health.latency health i > Picker.Health.latency health !slowest then
            slowest := i)
        quorum;
      let slow = !slowest in
      let in_quorum i = Array.exists (Int.equal i) quorum in
      (* Hedge only a quorum member that looks gray — flagged as an outlier,
         or (during the detection lag, before it has the samples to be
         flagged) already [suspect] next to the spare — and only to a healthy
         spare. A speculative call is not free: the spare executes it, takes
         the read lock, and becomes a 2PC participant whose prepare/commit
         rounds the transaction then waits on — so hedging a healthy quorum
         against a gray spare would *add* the gray replica to the critical
         path it was chosen to avoid. *)
      let spare = ref None in
      for i = 0 to t.transport.Transport.n_reps - 1 do
        if
          (not (in_quorum i))
          && available ctx i
          && (not (Picker.Health.outlier health i))
          && Config.votes_of t.config i >= Config.votes_of t.config slow
        then begin
          let better =
            match !spare with
            | None -> true
            | Some s -> Picker.Health.latency health i < Picker.Health.latency health s
          in
          if better then spare := Some i
        end
      done;
      (match !spare with
      | Some s
        when Picker.Health.outlier health slow
             || Picker.Health.suspect health slow ~against:s ->
          let delay = Picker.Health.hedge_delay ~floor health in
          fanout ctx
            (fun i ->
              if i = slow then
                race.Transport.run
                  (fun () -> callf i)
                  ~after:delay
                  (fun () ->
                    t.hedged <- t.hedged + 1;
                    callf s)
              else callf i)
            quorum
      | Some _ | None -> fanout ctx callf quorum)
  | _ -> fanout ctx callf quorum

(* Send DirRepLookup to a read quorum; believe the highest version number.
   Works over bounds so the real-predecessor walk can look up LOW/HIGH,
   which every representative reports present at the lowest version. *)
let suite_lookup_payload ctx bound =
  let quorum = collect_read_quorum ctx in
  let replies = hedged_fanout ctx quorum (fun i -> rep_lookup ctx i bound) in
  Array.fold_left
    (fun ((_, bestv, _) as best) reply ->
      let ((_, v, _) as candidate) =
        match reply with
        | Gi.Present { version; value } -> (true, version, value)
        | Gi.Absent { gap_version } -> (false, gap_version, "")
      in
      if v > bestv then candidate else best)
    (false, Version.lowest - 1, "")
    replies

let line_of_result (isin, v, value) =
  if isin then Cache.Entry { version = v; value } else Cache.Gap { version = v }

(* The winning tag of a validation round, with the tie-break of the payload
   fold (first maximal reply in quorum order): the index into [quorum] whose
   tag carries the highest version, scanning left to right with strict
   improvement. *)
let winning_tag tags =
  let version_of = function Rep.Tag_entry v | Rep.Tag_gap v -> v in
  let best = ref 0 in
  Array.iteri
    (fun j t -> if version_of t > version_of tags.(!best) then best := j)
    tags;
  (!best, tags.(!best))

(* Version-validated quorum read (Gifford's weak-representative validation):
   collect the read quorum as version tags — same locks, same serialization
   point, no payload — and serve the cached line when the winning tag agrees
   with it. Otherwise fetch the payload from exactly one member holding the
   winning version (the healthiest one when EWMA scores exist) and install
   the result. Absence needs no payload at all: the winning gap tag *is* the
   result. Hedging covers the validation leg — the fan-out below is the same
   [hedged_fanout] the payload path uses. *)
let suite_lookup_validated ctx bound c =
  let t = ctx.suite in
  let cached = Cache.find c ~epoch:(cache_epoch t) bound in
  let quorum = collect_read_quorum ctx in
  (* Pair every reply with the representative that actually produced it:
     under hedging the slow member's slot may carry the spare's tag, so a
     reply's position in [quorum] does not identify its source. *)
  let replies = hedged_fanout ctx quorum (fun i -> (i, rep_validate ctx i bound)) in
  let tags = Array.map snd replies in
  let _, tag = winning_tag tags in
  match tag with
  | Rep.Tag_gap gv ->
      (match cached with
      | Some (Cache.Gap { version }) when version = gv -> Cache.note c `Hit
      | Some _ -> Cache.note c `Mismatch
      | None -> Cache.note c `Miss);
      cache_stage t ctx.txn (C_store (bound, Cache.Gap { version = gv }));
      (false, gv, "")
  | Rep.Tag_entry v -> (
      match cached with
      | Some (Cache.Entry { version; value }) when version = v ->
          Cache.note c `Hit;
          (true, v, value)
      | prior -> (
          Cache.note c (match prior with Some _ -> `Mismatch | None -> `Miss);
          (* Everyone whose tag carries the winning version holds the same
             committed (key, version, value) triple — fetch from the
             healthiest of them, identified by responder id, never by
             quorum slot. The validation locked the key at every member it
             reached, so the entry cannot change under us. *)
          let holders =
            let l = ref [] in
            Array.iter
              (fun (src, tg) -> if tg = Rep.Tag_entry v then l := src :: !l)
              replies;
            Array.of_list (List.rev !l)
          in
          let source =
            match t.picker with
            | Picker.Healthy h -> (
                match Picker.Health.best h holders with
                | Some i -> i
                | None -> quorum.(0))
            | _ -> if Array.length holders > 0 then holders.(0) else quorum.(0)
          in
          match rep_lookup ctx source bound with
          | Gi.Present { version = v'; value } when v' = v ->
              cache_stage t ctx.txn (C_store (bound, Cache.Entry { version = v'; value }));
              (true, v', value)
          | Gi.Present _ | Gi.Absent _ ->
              (* The fetched copy contradicts the validated quorum — only
                 possible if source selection escaped the validation's lock
                 coverage (e.g. a hedge spare that answered for a slot but
                 lost a later race). Never serve it: fall back to the full
                 payload quorum read, whose own fold returns the committed
                 maximum, and cache that instead. *)
              let r = suite_lookup_payload ctx bound in
              cache_stage t ctx.txn (C_store (bound, line_of_result r));
              r))

let suite_lookup_bound ctx bound =
  match ctx.suite.cache with
  | None -> suite_lookup_payload ctx bound
  | Some c -> suite_lookup_validated ctx bound c

(* --- RealPredecessor / RealSuccessor (Figure 12) ------------------------------- *)

(* Walk downward (resp. upward) through candidate neighbours, skipping
   ghosts, until a key current in the suite is found. Returns the neighbour,
   its current version and value, and the largest gap version seen along the
   walk — which dominates every version ever associated with any key in the
   range, because each step consults a full read quorum. *)
(* Batched walks (§4): each quorum member ships a chain of [depth]
   successive neighbours per call; the walk consumes cached chain elements
   and only re-calls a representative when its chain is exhausted. A chain
   anchored at k0 lists *consecutive* entries of that representative, so for
   any later probe k below the anchor, the first chain element below k is
   exactly that representative's predecessor of k, and the element's
   gap-after version is the gap containing (element, k). *)
let pred_from_cache ctx depth i cache k =
  let covered =
    List.find_opt (fun (n : Gi.neighbor) -> Bound.compare n.Gi.key k < 0) !cache
  in
  match covered with
  | Some n -> n
  | None -> (
      let chain = rep_chain ctx i ~pred:true k ~depth in
      cache := chain;
      match chain with n :: _ -> n | [] -> assert false)

let succ_from_cache ctx depth i cache k =
  let covered =
    List.find_opt (fun (n : Gi.neighbor) -> Bound.compare n.Gi.key k > 0) !cache
  in
  match covered with
  | Some n -> n
  | None -> (
      let chain = rep_chain ctx i ~pred:false k ~depth in
      cache := chain;
      match chain with n :: _ -> n | [] -> assert false)

let real_predecessor_batched ctx depth x =
  let quorum = collect_read_quorum ctx in
  let maxv = ref Version.lowest in
  (* Prefetch every member's first chain concurrently. *)
  let caches =
    fanout ctx
      (fun i ->
        (i, ref (rep_chain ctx i ~pred:true (Bound.Key x) ~depth)))
      quorum
  in
  let rec walk k =
    let pred = ref Bound.Low in
    Array.iter
      (fun (i, cache) ->
        let n = pred_from_cache ctx depth i cache k in
        pred := Bound.max n.Gi.key !pred;
        maxv := Version.max n.Gi.gap_version !maxv)
      caches;
    let isin, pver, pvalue = suite_lookup_bound ctx !pred in
    if isin then (!pred, pvalue, pver, !maxv) else walk !pred
  in
  walk (Bound.Key x)

let real_successor_batched ctx depth x =
  let quorum = collect_read_quorum ctx in
  let maxv = ref Version.lowest in
  let caches =
    fanout ctx
      (fun i ->
        (i, ref (rep_chain ctx i ~pred:false (Bound.Key x) ~depth)))
      quorum
  in
  let rec walk k =
    let succ = ref Bound.High in
    Array.iter
      (fun (i, cache) ->
        let n = succ_from_cache ctx depth i cache k in
        succ := Bound.min n.Gi.key !succ;
        maxv := Version.max n.Gi.gap_version !maxv)
      caches;
    let isin, sver, svalue = suite_lookup_bound ctx !succ in
    if isin then (!succ, svalue, sver, !maxv) else walk !succ
  in
  walk (Bound.Key x)

let real_predecessor_single ctx x =
  let quorum = collect_read_quorum ctx in
  let maxv = ref Version.lowest in
  let rec walk k =
    let neighbours =
      fanout ctx (fun i -> rep_neighbor ctx i ~pred:true k) quorum
    in
    let pred = ref Bound.Low in
    Array.iter
      (fun (n : Gi.neighbor) ->
        pred := Bound.max n.Gi.key !pred;
        maxv := Version.max n.Gi.gap_version !maxv)
      neighbours;
    let isin, pver, pvalue = suite_lookup_bound ctx !pred in
    if isin then (!pred, pvalue, pver, !maxv) else walk !pred
  in
  walk (Bound.Key x)

let real_successor_single ctx x =
  let quorum = collect_read_quorum ctx in
  let maxv = ref Version.lowest in
  let rec walk k =
    let neighbours =
      fanout ctx (fun i -> rep_neighbor ctx i ~pred:false k) quorum
    in
    let succ = ref Bound.High in
    Array.iter
      (fun (n : Gi.neighbor) ->
        succ := Bound.min n.Gi.key !succ;
        maxv := Version.max n.Gi.gap_version !maxv)
      neighbours;
    let isin, sver, svalue = suite_lookup_bound ctx !succ in
    if isin then (!succ, svalue, sver, !maxv) else walk !succ
  in
  walk (Bound.Key x)

let real_predecessor ctx x =
  let depth = ctx.suite.batch_depth in
  if depth <= 1 then real_predecessor_single ctx x else real_predecessor_batched ctx depth x

let real_successor ctx x =
  let depth = ctx.suite.batch_depth in
  if depth <= 1 then real_successor_single ctx x else real_successor_batched ctx depth x

(* --- operation bodies ----------------------------------------------------------- *)

(* Batched DirSuiteLookup: the read and — for a single-operation transaction
   — the read-only release travel in one message per quorum member. A member
   that grants the release ([R_finished true]) is done with the transaction;
   refusals simply fall back to the normal termination round. *)
let suite_lookup_finishing_payload ctx bound =
  let quorum = collect_read_quorum ctx in
  let ops = [ Rep.B_lookup bound; Rep.B_finish_readonly ] in
  let replies =
    fanout ctx
      (fun i ->
        match exec ctx i ops with
        | [ Rep.R_lookup l; Rep.R_finished fin ] ->
            if fin then begin
              let s = session_of ctx in
              s.finished <- Int_set.add i s.finished
            end;
            l
        | _ -> assert false)
      quorum
  in
  Array.fold_left
    (fun ((_, bestv, _) as best) reply ->
      let ((_, v, _) as candidate) =
        match reply with
        | Gi.Present { version; value } -> (true, version, value)
        | Gi.Absent { gap_version } -> (false, gap_version, "")
      in
      if v > bestv then candidate else best)
    (false, Version.lowest - 1, "")
    replies

(* Cached variant of the finishing lookup: the validation piggybacks on the
   read-only release, so a cache hit stays a single zero-payload round. A
   version mismatch on a present entry discards the round — the granted
   releases are rolled back client-side so round 2 re-locks at every member
   it touches and termination still reaches anyone left holding locks — and
   falls back to the plain payload round, whose locks define the
   serialization point (sound here: the finishing path is only used by
   single-operation implicit transactions, which have no earlier reads to
   stay consistent with). A winning gap tag never needs the fallback: the
   tag is the whole answer. *)
let suite_lookup_finishing_validated ctx bound c =
  let t = ctx.suite in
  let fallback note =
    Cache.note c note;
    let r = suite_lookup_finishing_payload ctx bound in
    cache_stage t ctx.txn (C_store (bound, line_of_result r));
    r
  in
  match Cache.find c ~epoch:(cache_epoch t) bound with
  | None -> fallback `Miss
  | Some line -> (
      let quorum = collect_read_quorum ctx in
      let granted = ref Int_set.empty in
      let ops = [ Rep.B_validate bound; Rep.B_finish_readonly ] in
      let tags =
        fanout ctx
          (fun i ->
            match exec ctx i ops with
            | [ Rep.R_tag tag; Rep.R_finished fin ] ->
                if fin then begin
                  let s = session_of ctx in
                  s.finished <- Int_set.add i s.finished;
                  granted := Int_set.add i !granted
                end;
                tag
            | _ -> assert false)
          quorum
      in
      let _, tag = winning_tag tags in
      match (tag, line) with
      | Rep.Tag_gap gv, Cache.Gap { version } when version = gv ->
          Cache.note c `Hit;
          (false, gv, "")
      | Rep.Tag_gap gv, _ ->
          Cache.note c `Mismatch;
          cache_stage t ctx.txn (C_store (bound, Cache.Gap { version = gv }));
          (false, gv, "")
      | Rep.Tag_entry v, Cache.Entry { version; value } when version = v ->
          Cache.note c `Hit;
          (true, v, value)
      | Rep.Tag_entry _, _ ->
          let s = session_of ctx in
          Int_set.iter (fun i -> s.finished <- Int_set.remove i s.finished) !granted;
          fallback `Mismatch)

let suite_lookup_finishing ctx bound =
  match ctx.suite.cache with
  | None -> suite_lookup_finishing_payload ctx bound
  | Some c -> suite_lookup_finishing_validated ctx bound c

let do_lookup ctx key =
  let isin, v, value =
    if ctx.suite.batching && ctx.final then suite_lookup_finishing ctx (Bound.Key key)
    else suite_lookup_bound ctx (Bound.Key key)
  in
  if isin then Some (v, value) else None

(* DirSuiteInsert / DirSuiteUpdate (Figure 9).

   [memo] carries the decision across re-runs of the operation body after a
   transport failure: without it, the re-run's lookup would observe the
   operation's *own* uncommitted write and misreport [`Already_present`]
   (and escalate the version). The memoized version also keeps the re-run's
   representative writes literally identical, i.e. idempotent. *)
let do_write ctx memo key value ~must_exist =
  let decide () =
    match !memo with
    | Some d -> d
    | None ->
        let isin, ver, _ = suite_lookup_bound ctx (Bound.Key key) in
        let d =
          if must_exist && not isin then Error `Not_present
          else if (not must_exist) && isin then Error `Already_present
          else Ok (Version.next ver)
        in
        memo := Some d;
        d
  in
  match decide () with
  | Error e -> Error e
  | Ok ver' when ctx.suite.batching ->
      (* The write round is this operation's last; for an implicit
         transaction under two-phase commit, piggyback the prepare on it
         (last-round optimization) so the explicit prepare round disappears.
         A piggybacked vote that fails raises out of the batch and aborts
         the transaction, exactly as a failed explicit prepare would. *)
      let t = ctx.suite in
      let quorum = collect_write_quorum ctx in
      let piggyback = ctx.final && t.two_phase in
      let ops =
        Rep.B_insert (key, ver', value)
        :: (if piggyback then [ Rep.B_prepare (Coordinator.id t.coordinator) ] else [])
      in
      ignore
        (fanout ctx
           (fun i ->
             let rs = exec ctx i ops in
             if piggyback then begin
               let s = session_of ctx in
               s.prepared <- Int_set.add i s.prepared
             end;
             rs)
           quorum);
      cache_stage t ctx.txn (C_store (Bound.Key key, Cache.Entry { version = ver'; value }));
      Ok ()
  | Ok ver' ->
      let quorum = collect_write_quorum ctx in
      ignore
        (fanout ctx
           (fun i -> rep_insert ctx i key ver' value)
           quorum);
      cache_stage ctx.suite ctx.txn
        (C_store (Bound.Key key, Cache.Entry { version = ver'; value }));
      Ok ()

(* Fused neighbour walks for the batched delete: round 1 sends the
   successor probe, the predecessor probe, and the victim lookup in one
   message per read-quorum member; each later round carries a walking
   side's candidate resolution (is it current?) together with a speculative
   neighbour probe from it, so skipping a ghost costs one round instead of
   the unbatched walk's probe-round-then-lookup-round pair. The speculative
   probe's replies are discarded — in particular not folded into the
   dominating version — when the candidate turns out current, which is
   exactly the point where the unbatched walk stops probing. Sentinel
   candidates resolve locally: they are present at every representative
   with the lowest version by construction, so their quorum lookup is
   already known. *)
let delete_walk ctx x =
  let quorum = collect_read_quorum ctx in
  let maxv = ref Version.lowest in
  let best_lookup =
    List.fold_left
      (fun ((_, bestv, _) as best) reply ->
        let ((_, v, _) as candidate) =
          match reply with
          | Gi.Present { version; value } -> (true, version, value)
          | Gi.Absent { gap_version } -> (false, gap_version, "")
        in
        if v > bestv then candidate else best)
      (false, Version.lowest - 1, "")
  in
  let advance ~towards ~pick neighbours =
    let cand =
      List.fold_left
        (fun acc (n : Gi.neighbor) ->
          maxv := Version.max n.Gi.gap_version !maxv;
          pick acc n.Gi.key)
        towards neighbours
    in
    match cand with
    | Bound.Key k -> `Walk k
    | (Bound.Low | Bound.High) as b -> `Done (b, "", Version.lowest)
  in
  let first =
    fanout ctx
      (fun i ->
        match exec ctx i [ Rep.B_successor x; Rep.B_predecessor x; Rep.B_lookup x ] with
        | [ Rep.R_neighbor s; Rep.R_neighbor p; Rep.R_lookup l ] -> (s, p, l)
        | _ -> assert false)
      quorum
  in
  let s0 =
    advance ~towards:Bound.High ~pick:Bound.min
      (Array.to_list (Array.map (fun (s, _, _) -> s) first))
  in
  let p0 =
    advance ~towards:Bound.Low ~pick:Bound.max
      (Array.to_list (Array.map (fun (_, p, _) -> p) first))
  in
  let isin, vx, _ = best_lookup (Array.to_list (Array.map (fun (_, _, l) -> l) first)) in
  let rec resolve s_state p_state =
    match (s_state, p_state) with
    | `Done s, `Done p -> (s, p)
    | _ ->
        let side_ops probe = function
          | `Walk k -> [ Rep.B_lookup (Bound.Key k); probe (Bound.Key k) ]
          | `Done _ -> []
        in
        let s_ops = side_ops (fun b -> Rep.B_successor b) s_state in
        let p_ops = side_ops (fun b -> Rep.B_predecessor b) p_state in
        let parts =
          fanout ctx
            (fun i ->
              match (s_state, p_state, exec ctx i (s_ops @ p_ops)) with
              | ( `Walk _,
                  `Walk _,
                  [ Rep.R_lookup ls; Rep.R_neighbor ns; Rep.R_lookup lp; Rep.R_neighbor np ]
                ) ->
                  ((Some ls, Some ns), (Some lp, Some np))
              | `Walk _, `Done _, [ Rep.R_lookup ls; Rep.R_neighbor ns ] ->
                  ((Some ls, Some ns), (None, None))
              | `Done _, `Walk _, [ Rep.R_lookup lp; Rep.R_neighbor np ] ->
                  ((None, None), (Some lp, Some np))
              | _ -> assert false)
            quorum
        in
        let step state ~towards ~pick proj =
          match state with
          | `Done _ as d -> d
          | `Walk k ->
              let collect part = Array.to_list parts |> List.filter_map (fun p -> part (proj p)) in
              let isin, ver, value = best_lookup (collect fst) in
              if isin then `Done (Bound.Key k, value, ver)
              else advance ~towards ~pick (collect snd)
        in
        resolve
          (step s_state ~towards:Bound.High ~pick:Bound.min fst)
          (step p_state ~towards:Bound.Low ~pick:Bound.max snd)
  in
  let s, p = resolve s0 p0 in
  (s, p, isin, vx, !maxv)

(* Batched DirSuiteDelete: the fused walks above already computed every
   input of the final round — the coalesce version [Version.next (max
   walk_ver vx)] needs nothing from the repair round — so the per-member
   existence checks + repair copies, the victim-presence probe, the
   coalesce, and (for an implicit two-phase transaction) the prepare all
   collapse into ONE message per write-quorum member. Member-local op order
   matches the unbatched rounds (repairs before coalesce), and members carry
   no cross-member data dependencies, so the interleaving is equivalent. *)
let do_delete_batched ctx key =
  let t = ctx.suite in
  let x = Bound.Key key in
  let (succ, svalue, sver), (pred, pvalue, pver), isin, vx, walk_ver = delete_walk ctx x in
  let ver = Version.max walk_ver vx in
  (* Collected after the walks so the prefer-touched policy can aim the
     write quorum at members the transaction already visited. *)
  let quorum = collect_write_quorum ctx in
  let piggyback = ctx.final && t.two_phase in
  let repair_of = function
    | Bound.Key k, v, value -> [ Rep.B_insert_if_absent (k, v, value) ]
    | (Bound.Low | Bound.High), _, _ -> []
  in
  let ops =
    repair_of (succ, sver, svalue)
    @ repair_of (pred, pver, pvalue)
    @ [ Rep.B_lookup x; Rep.B_coalesce (pred, succ, Version.next ver) ]
    @ (if piggyback then [ Rep.B_prepare (Coordinator.id t.coordinator) ] else [])
  in
  let per_member =
    fanout ctx
      (fun i ->
        let rs = exec ctx i ops in
        if piggyback then begin
          let s = session_of ctx in
          s.prepared <- Int_set.add i s.prepared
        end;
        let repairs = ref 0 and has_x = ref false and removed = ref 0 in
        List.iter2
          (fun op r ->
            match (op, r) with
            | Rep.B_insert_if_absent _, Rep.R_inserted inserted ->
                if inserted then incr repairs
            | Rep.B_lookup _, Rep.R_lookup (Gi.Present _) -> has_x := true
            | Rep.B_lookup _, Rep.R_lookup (Gi.Absent _) -> ()
            | Rep.B_coalesce _, Rep.R_removed n -> removed := n
            | Rep.B_prepare _, Rep.R_unit -> ()
            | _ -> assert false)
          ops rs;
        (i, !repairs, !has_x, !removed))
      quorum
  in
  let repair_inserts = ref 0 and present_x = ref 0 and total_removed = ref 0 in
  Array.iter
    (fun (_, repairs, has_x, removed) ->
      repair_inserts := !repair_inserts + repairs;
      if has_x then incr present_x;
      total_removed := !total_removed + removed)
    per_member;
  (* The coalesce turns the whole open interval (pred, succ) into one gap at
     [Version.next ver]: drop every cached line inside it and remember the
     victim's new gap version. *)
  cache_stage t ctx.txn (C_invalidate_range (pred, succ));
  cache_stage t ctx.txn (C_store (x, Cache.Gap { version = Version.next ver }));
  {
    was_present = isin;
    removed_per_rep = Array.map (fun (i, _, _, removed) -> (i, removed)) per_member;
    repair_inserts = !repair_inserts;
    ghosts_deleted = !total_removed - !present_x;
    pred;
    succ;
  }

(* DirSuiteDelete (Figure 13). *)
let do_delete_unbatched ctx key =
  let x = Bound.Key key in
  let quorum = collect_write_quorum ctx in
  let succ, svalue, sver, ver1 = real_successor ctx key in
  let pred, pvalue, pver, ver2 = real_predecessor ctx key in
  let isin, vx, _ = suite_lookup_bound ctx x in
  let ver = Version.max (Version.max ver1 ver2) vx in
  (* Make sure the predecessor and successor exist in every quorum member;
     sentinels exist everywhere by construction. *)
  let per_member =
    fanout ctx
      (fun i ->
        let repairs = ref 0 in
        (match succ with
        | Bound.Key sk ->
            (match rep_lookup ctx i succ with
            | Gi.Present _ -> ()
            | Gi.Absent _ ->
                incr repairs;
                rep_insert ctx i sk sver svalue)
        | Bound.Low | Bound.High -> ());
        (match pred with
        | Bound.Key pk ->
            (match rep_lookup ctx i pred with
            | Gi.Present _ -> ()
            | Gi.Absent _ ->
                incr repairs;
                rep_insert ctx i pk pver pvalue)
        | Bound.Low | Bound.High -> ());
        (* Not part of Figure 13: observe whether the victim is physically
           present here, to separate ghost deletions in the statistics. *)
        let has_x =
          match rep_lookup ctx i x with
          | Gi.Present _ -> true
          | Gi.Absent _ -> false
        in
        (!repairs, has_x))
      quorum
  in
  let repair_inserts = ref 0 in
  let present_x = ref 0 in
  Array.iter
    (fun (repairs, has_x) ->
      repair_inserts := !repair_inserts + repairs;
      if has_x then incr present_x)
    per_member;
  (* Coalesce the range in each member with a dominating gap version. *)
  let removed =
    fanout ctx
      (fun i -> (i, rep_coalesce ctx i ~lo:pred ~hi:succ (Version.next ver)))
      quorum
  in
  let total_removed = Array.fold_left (fun acc (_, n) -> acc + n) 0 removed in
  cache_stage ctx.suite ctx.txn (C_invalidate_range (pred, succ));
  cache_stage ctx.suite ctx.txn (C_store (x, Cache.Gap { version = Version.next ver }));
  {
    was_present = isin;
    removed_per_rep = removed;
    repair_inserts = !repair_inserts;
    ghosts_deleted = total_removed - !present_x;
    pred;
    succ;
  }

let do_delete ctx key =
  if ctx.suite.batching then do_delete_batched ctx key else do_delete_unbatched ctx key

(* --- transaction plumbing --------------------------------------------------------- *)

let abort_touched t txn =
  match Hashtbl.find_opt t.touched txn with
  | None -> ()
  | Some s ->
      Int_set.iter
        (fun i ->
          acct_send t Wire.control;
          match Transport.send t.transport i (fun rep -> Rep.abort rep ~txn) with
          | Ok () | Error _ -> ()
          | exception Txn.Abort _ ->
              (* The representative's termination protocol already settled
                 this transaction the other way; nothing left to do here. *)
              ())
        (Int_set.diff s.reps s.finished);
      Hashtbl.remove t.touched txn

(* Single-phase commit: best effort. A representative that crashed after
   doing work for us has already lost its volatile state; its WAL lacks our
   commit record, so recovery discards the work. The quorum intersection
   property keeps the suite correct as long as a write quorum's worth of
   commits survive — two-phase commit (below) closes even that window.
   Single-phase commits are never deferred as notices: an unprepared
   participant's lease would unilaterally *abort* work the client was
   already told committed. *)
let commit_one_phase t txn s =
  Int_set.iter
    (fun i ->
      acct_send t Wire.control;
      match Transport.send t.transport i (fun rep -> Rep.commit rep ~txn) with
      | Ok () | Error _ -> ()
      | exception Txn.Abort _ ->
          (* The representative aborted unilaterally (lease expiry) before
             the commit arrived; single-phase commit is best effort, and
             anti-entropy repairs the divergence. *)
          ())
    (Int_set.diff s.reps s.finished);
  Hashtbl.remove t.touched txn

(* The prepare half of presumed-abort two-phase commit, shared between the
   single-suite commit below and the cross-shard protocol ({!cross_prepare}):
   release read-only participants, collect yes votes from the rest, and
   report whether every remaining participant holds a durable vote bound to
   this client's coordinator. Decides nothing — the caller owns the
   decision record, which for a cross-shard transaction covers the prepare
   results of *every* group's suite. *)
let prepare_round t txn s =
  (* A yes-vote is only valid from the incarnation that executed the
     transaction's operations: a participant that restarted since first
     contact has lost volatile state (and a crash may have destroyed its
     unforced log records), so whatever it would vote is worthless — checked
     both before preparing and after the vote lands, in case the restart
     happens while the prepare call itself is in flight. *)
  let same_incarnation i =
    match Hashtbl.find_opt s.incarnations i with
    | Some first -> t.transport.Transport.incarnation i = first
    | None -> true
  in
  let coord = Coordinator.id t.coordinator in
  (* Members released in-round by a read-only finish are out of the
     protocol; members whose vote was piggybacked on their final work round
     already voted yes (a refused piggybacked vote raised out of the batch
     and aborted the transaction before we got here). *)
  let participants = Int_set.diff s.reps s.finished in
  let unprepared = Int_set.diff participants s.prepared in
  (* Batched mode: a participant the transaction only read at can be
     released with a single finish message instead of a prepare+commit
     pair. The representative is authoritative — a refusal (it holds writes
     or a binding vote) falls through to the normal prepare below. *)
  let unprepared =
    if not t.batching then unprepared
    else
      Int_set.filter
        (fun i ->
          acct_send t Wire.control;
          match Transport.send t.transport i (fun rep -> Rep.finish_readonly rep ~txn) with
          | Ok true ->
              s.finished <- Int_set.add i s.finished;
              false
          | Ok false | Error _ -> true
          | exception _ -> true)
        unprepared
  in
  Int_set.for_all
    (fun i ->
      same_incarnation i
      && begin
           acct_send t (Wire.control + 4);
           match Transport.send t.transport i (fun rep -> Rep.prepare rep ~txn ~coord) with
      | Ok () -> same_incarnation i
      | Error _ -> false
      | exception Txn.Abort _ ->
          (* The representative refused the vote (it lost this
             transaction's effects in a crash, or already aborted it
             unilaterally when its lease expired). *)
          false
         end)
    unprepared

(* The commit half: deliver a committed decision to prepared participants.
   Only ever called after the coordinator force-logged [Committed]. *)
let commit_round t txn participants =
  if t.batching then begin
    (* Commit pipelining: every participant holds a durable yes vote
       bound to this coordinator, so the commit notices can ride on
       later messages (or the flush timer). Until one lands, the
       participant's lease expiry resolves the transaction through
       this coordinator's decision log — same verdict, just slower. *)
    Int_set.iter (fun i -> enqueue_notice t i (Rep.N_commit txn)) participants;
    arm_flush t
  end
  else
    Int_set.iter
      (fun i ->
        acct_send t Wire.control;
        match Transport.send t.transport i (fun rep -> Rep.commit rep ~txn) with
        | Ok () | Error _ ->
            (* A participant that crashed here is in doubt; its recovery
               re-locks our effects and resolves them by querying this
               coordinator's decision log. *)
            ()
        | exception Txn.Abort _ ->
            (* Impossible for a prepared participant (it cannot abort once
               its vote is cast unless we decide so); kept total for
               duplicate-delivery races. *)
            ())
      participants

(* Presumed-abort two-phase commit. The client is the coordinator: it runs an
   explicit prepare round over the participants, force-logs a commit decision
   in its own log before telling anyone, then runs the commit round. Any
   prepare failure decides abort — recorded but never forced, because a
   participant that finds no decision on file presumes abort anyway. *)
let commit_two_phase t txn s =
  let all_prepared = prepare_round t txn s in
  let participants = Int_set.diff s.reps s.finished in
  if Int_set.is_empty participants then
    (* Fully read-only and fully released in-round: there is nothing to
       decide and nobody who could ever go in doubt — skip the forced
       decision record entirely. *)
    Hashtbl.remove t.touched txn
  else
    (* First-writer-wins against the termination protocol: an in-doubt
       participant's resolution query may have already presumed abort, in
       which case our commit decision loses and the round below aborts. *)
    let decision =
      Coordinator.decide t.coordinator txn
        (if all_prepared then Coordinator.Committed else Coordinator.Aborted)
    in
    match decision with
    | Coordinator.Committed ->
        commit_round t txn participants;
        Hashtbl.remove t.touched txn
    | Coordinator.Aborted ->
        abort_touched t txn;
        raise (Unavailable ("transaction aborted during two-phase commit" ^ shard_suffix t))

(* --- cross-shard two-phase commit ---------------------------------------------- *)

(* A transaction that touched several shard groups spans several suites —
   one per group, all sharing one transaction manager and one client
   coordinator. The router drives the protocol: [cross_prepare] on every
   touched suite, ONE [Coordinator.decide] (the client's single forced
   decision record covers all groups' participants, who all recorded the
   same coordinator id at prepare time), then [cross_commit] or
   [cross_abort] on every suite. In-doubt resolution needs no changes: a
   participant in any group queries the same coordinator log it would for a
   single-group transaction. *)

let has_participants t txn =
  match Hashtbl.find_opt t.touched txn with
  | None -> false
  | Some s -> not (Int_set.is_empty (Int_set.diff s.reps s.finished))

let cross_prepare t txn =
  match Hashtbl.find_opt t.touched txn with
  | None -> true
  | Some s -> prepare_round t txn s

let cross_commit t txn =
  (match Hashtbl.find_opt t.touched txn with
  | None -> ()
  | Some s ->
      commit_round t txn (Int_set.diff s.reps s.finished);
      Hashtbl.remove t.touched txn);
  (* Each group's suite staged its own cache lines; apply them now that the
     transaction is a committed fact everywhere. *)
  cache_apply t txn

let cross_abort t txn =
  cache_drop t txn;
  abort_touched t txn

let commit_touched t txn =
  match Hashtbl.find_opt t.touched txn with
  | None -> ()
  | Some s ->
      if t.two_phase then commit_two_phase t txn s else commit_one_phase t txn s

let with_txn t f =
  let txn = Txn.Manager.begin_txn t.txns in
  match f txn with
  | result -> (
      match commit_touched t txn with
      | () ->
          Txn.Manager.commit t.txns txn;
          (* Only now are the transaction's writes committed facts; applying
             the staged cache lines any earlier would let an aborted write
             poison the cache with a version number a later committed write
             can legitimately reuse. *)
          cache_apply t txn;
          record_finish t ~txn `Ok;
          result
      | exception e ->
          (* Two-phase commit already aborted the participants. *)
          cache_drop t txn;
          Txn.Manager.abort t.txns txn;
          record_finish t ~txn (failed_commit_status t txn);
          raise e)
  | exception e ->
      cache_drop t txn;
      abort_touched t txn;
      Txn.Manager.abort t.txns txn;
      record_finish t ~txn `Failed;
      raise e

(* Bounded client-level retry: transient failures (no quorum right now, a
   deadlock abort) heal with time, so re-running the whole operation — a
   fresh transaction with fresh quorums — after an exponentially backed-off
   pause is the standard recovery. Aborted attempts rolled everything back,
   so a re-run never double-applies.

   Two fail-fast bounds ride alongside the attempt count. [deadline] caps
   the *cumulative* backoff sleep: with exponential growth the attempt count
   alone is a wall-clock hazard (at the default backoff, seven attempts can
   sleep past any lease), so the default deadline of [48 * backoff] bounds
   total waiting at roughly double the default schedule's worst case —
   generous for every existing caller, finite for all of them. [budget] is a
   shared token bucket ({!Retry_budget}): each retry must buy a token and
   each overall success earns a fraction back, so when unavailability is
   sustained across many operations the client's retries dry up and it
   surfaces the failure instead of amplifying the storm. Both bounds
   re-raise the original failure. *)
let with_retries ?(attempts = 5) ?(backoff = 1.0) ?deadline ?budget
    ?(sleep = fun _ -> ()) ?rng f =
  if attempts < 1 then invalid_arg "Suite.with_retries: need at least one attempt";
  let deadline = match deadline with Some d -> d | None -> 48.0 *. backoff in
  if deadline <= 0.0 then invalid_arg "Suite.with_retries: deadline must be positive";
  let slept = ref 0.0 in
  let rec go k =
    match f () with
    | r ->
        (match budget with Some b -> Retry_budget.earn b | None -> ());
        r
    | exception
        ((Unavailable _ | Txn.Abort (Txn.Deadlock _) | Txn.Abort (Txn.Unavailable _)) as e)
      ->
        if k + 1 >= attempts then raise e
        else begin
          (* The jitter draw stays strictly on the will-retry path, keeping
             the RNG stream identical to the pre-deadline implementation for
             every schedule the bounds never cut short. *)
          let jitter = match rng with Some r -> 0.5 +. Rng.float r 1.0 | None -> 1.0 in
          let pause = backoff *. (2.0 ** float_of_int k) *. jitter in
          if !slept +. pause > deadline then raise e;
          (match budget with
          | Some b when not (Retry_budget.try_spend b) -> raise e
          | Some _ | None -> ());
          slept := !slept +. pause;
          sleep pause;
          go (k + 1)
        end
  in
  go 0

(* Run an operation body, re-running with the failed representative excluded
   when the transport fails mid-flight. Representative operations are
   idempotent for fixed arguments, so a re-run only repeats work. *)
let run_op t ?txn body =
  let attempt ~implicit ~final txn =
    (* The operation's deadline budget becomes an absolute deadline now, at
       operation start — every hop it crosses from here on (RPC stamps,
       body re-runs) consumes the one budget. *)
    let deadline =
      match (t.op_deadline, t.timers) with
      | Some budget, Some timers -> Some (timers.Rep.now () +. budget)
      | _ -> None
    in
    let expired () =
      match (deadline, t.timers) with
      | Some d, Some timers -> timers.Rep.now () > d
      | _ -> false
    in
    let ctx = { txn; excluded = Int_set.empty; suite = t; final; deadline } in
    let rec go () =
      (* Client-side half of deadline propagation: a body re-run (after a
         transport failure or a fence) starts by checking its own clock, so
         an operation that has burned its budget on timeouts stops here
         rather than collecting another quorum. *)
      if expired () then
        raise (Deadline_exceeded "operation deadline exceeded before retry");
      try body ctx with
      | Rep.Deadline_exceeded msg ->
          (* A representative refused already-expired work; the operation
             unwinds (its transaction aborts at the [with_txn]/[run_op]
             boundary, rolling back any partial effects). Not retried by
             [with_retries]: the point is to fail fast. *)
          raise (Deadline_exceeded msg)
      | Transport.Rpc_failed (i, _) ->
          ctx.excluded <- Int_set.add i ctx.excluded;
          go ()
      | Rep.Stale_epoch { record; _ } ->
          (* A representative fenced us: adopt the newer configuration it
             handed back. A single-operation implicit transaction simply
             re-runs its body — fresh quorums, fresh reads — under the new
             epoch (locks already taken stay held until termination, which
             is merely conservative). An explicit multi-operation
             transaction may have collected earlier quorums under a view
             that is now more than one fence old, so it aborts and retries
             wholesale. *)
          adopt t record;
          if implicit then go ()
          else
            raise
              (Txn.Abort (Txn.Unavailable "membership epoch advanced mid-transaction"))
    in
    go ()
  in
  (* Only an implicit single-operation transaction has a known final round;
     inside an explicit [with_txn] the client may keep operating, so nothing
     can be piggybacked on this operation. *)
  match txn with
  | Some txn -> attempt ~implicit:false ~final:false txn
  | None -> with_txn t (attempt ~implicit:true ~final:true)

(* --- public operations --------------------------------------------------------------- *)

let lookup ?txn t key =
  run_op t ?txn (fun ctx ->
      let r = do_lookup ctx key in
      record_prim t ~txn:ctx.txn (History.Lookup (key, Option.map snd r));
      r)

let mem ?txn t key = Option.is_some (lookup ?txn t key)

let insert ?txn t key value =
  let memo = ref None in
  match
    run_op t ?txn (fun ctx ->
        let r = do_write ctx memo key value ~must_exist:false in
        record_prim t ~txn:ctx.txn (History.Insert (key, value, r = Ok ()));
        r)
  with
  | Ok () -> Ok ()
  | Error `Already_present -> Error `Already_present
  | Error `Not_present -> assert false

let update ?txn t key value =
  let memo = ref None in
  match
    run_op t ?txn (fun ctx ->
        let r = do_write ctx memo key value ~must_exist:true in
        record_prim t ~txn:ctx.txn (History.Update (key, value, r = Ok ()));
        r)
  with
  | Ok () -> Ok ()
  | Error `Not_present -> Error `Not_present
  | Error `Already_present -> assert false

let delete ?txn t key =
  run_op t ?txn (fun ctx ->
      let r = do_delete ctx key in
      record_prim t ~txn:ctx.txn (History.Delete (key, r.was_present));
      r)

(* --- ordered traversal --------------------------------------------------------------- *)

(* The real-successor walk already returns the next *current* entry; the
   sentinels map to None. *)
let next_in ctx key =
  match real_successor ctx key with
  | Bound.Key k, value, ver, _maxv -> Some (k, ver, value)
  | (Bound.High | Bound.Low), _, _, _ -> None

let prev_in ctx key =
  match real_predecessor ctx key with
  | Bound.Key k, value, ver, _maxv -> Some (k, ver, value)
  | (Bound.High | Bound.Low), _, _, _ -> None

let next ?txn t key = run_op t ?txn (fun ctx -> next_in ctx key)
let prev ?txn t key = run_op t ?txn (fun ctx -> prev_in ctx key)

let first ?txn t =
  run_op t ?txn (fun ctx ->
      (* Ask every quorum member for the successor of LOW, take the smallest
         candidate, and resolve it with a suite lookup; if it turns out to be
         a ghost, continue with the normal walk from it. *)
      let quorum = collect_read_quorum ctx in
      let neighbours =
        fanout ctx
          (fun i -> rep_neighbor ctx i ~pred:false Bound.Low)
          quorum
      in
      let candidate =
        Array.fold_left (fun acc (n : Gi.neighbor) -> Bound.min acc n.Gi.key) Bound.High
          neighbours
      in
      match candidate with
      | Bound.High | Bound.Low -> None
      | Bound.Key k -> (
          let isin, ver, value = suite_lookup_bound ctx (Bound.Key k) in
          if isin then Some (k, ver, value) else next_in ctx k))

let last ?txn t =
  run_op t ?txn (fun ctx ->
      let quorum = collect_read_quorum ctx in
      let neighbours =
        fanout ctx
          (fun i -> rep_neighbor ctx i ~pred:true Bound.High)
          quorum
      in
      let candidate =
        Array.fold_left (fun acc (n : Gi.neighbor) -> Bound.max acc n.Gi.key) Bound.Low
          neighbours
      in
      match candidate with
      | Bound.High | Bound.Low -> None
      | Bound.Key k -> (
          let isin, ver, value = suite_lookup_bound ctx (Bound.Key k) in
          if isin then Some (k, ver, value) else prev_in ctx k))

let fold_range ?txn t ~lo ~hi ~init ~f =
  run_op t ?txn (fun ctx ->
      let start =
        let isin, _, value = suite_lookup_bound ctx (Bound.Key lo) in
        if isin then Some (lo, 0, value) else next_in ctx lo
      in
      let rec go acc = function
        | Some (k, _, value) when Key.compare k hi <= 0 ->
            go (f acc k value) (next_in ctx k)
        | Some _ | None -> acc
      in
      go init start)

let to_alist ?txn t =
  run_op t ?txn (fun ctx ->
      let rec go acc = function
        | Some (k, _, value) -> go ((k, value) :: acc) (next_in ctx k)
        | None -> List.rev acc
      in
      let quorum = collect_read_quorum ctx in
      let neighbours =
        fanout ctx
          (fun i -> rep_neighbor ctx i ~pred:false Bound.Low)
          quorum
      in
      match
        Array.fold_left (fun acc (n : Gi.neighbor) -> Bound.min acc n.Gi.key) Bound.High
          neighbours
      with
      | Bound.High | Bound.Low -> []
      | Bound.Key k ->
          let isin, _, value = suite_lookup_bound ctx (Bound.Key k) in
          let start = if isin then Some (k, 0, value) else next_in ctx k in
          go [] start)
