open Repdir_key
open Repdir_util
open Repdir_quorum
open Repdir_txn
open Repdir_rep
module Gi = Repdir_gapmap.Gapmap_intf

type value = string

exception Unavailable of string

module Int_set = Set.Make (Int)

(* Per-transaction session: which representatives the transaction has
   operated on, and each one's incarnation number at first contact. A
   participant that restarts mid-transaction has lost the transaction's
   volatile state — locks, undo records, possibly unforced log records — so
   any evidence of a restart (a changed incarnation) must fail the
   transaction rather than let a half-remembered participant vote. *)
type session = { mutable reps : Int_set.t; incarnations : (int, int) Hashtbl.t }

type t = {
  config : Config.t;
  picker : Picker.strategy;
  transport : Transport.t;
  txns : Txn.Manager.t;
  rng : Rng.t;
  touched : (Txn.id, session) Hashtbl.t;
  two_phase : bool;
  coordinator : Coordinator.t;
  batch_depth : int;
  sync : Repdir_sync.Sync.t option;
}

let create ?(picker = Picker.Random) ?(seed = 1L) ?(two_phase = false)
    ?coordinator ?(batch_depth = 1) ?sync ~config ~transport ~txns () =
  if Config.n_reps config <> transport.Transport.n_reps then
    invalid_arg "Suite.create: config and transport disagree on representative count";
  if batch_depth < 1 then invalid_arg "Suite.create: batch_depth must be at least 1";
  let coordinator =
    match coordinator with Some c -> c | None -> Coordinator.create ()
  in
  {
    config;
    picker;
    transport;
    txns;
    rng = Rng.create seed;
    touched = Hashtbl.create 16;
    two_phase;
    coordinator;
    batch_depth;
    sync;
  }

let config t = t.config
let transport t = t.transport
let coordinator t = t.coordinator
let sync t = t.sync
let sync_counters t = Option.map Repdir_sync.Sync.counters t.sync

let set_sync_enabled t on =
  match t.sync with
  | Some s -> Repdir_sync.Sync.set_enabled s on
  | None -> invalid_arg "Suite.set_sync_enabled: suite has no sync actor attached"

type delete_report = {
  was_present : bool;
  removed_per_rep : (int * int) array;
  repair_inserts : int;
  ghosts_deleted : int;
  pred : Bound.t;
  succ : Bound.t;
}

(* --- per-operation context --------------------------------------------------- *)

(* An operation context carries the transaction and the set of
   representatives found unreachable during this operation; those are
   excluded from quorum re-selection when the operation body is re-run. *)
type ctx = { txn : Txn.id; mutable excluded : Int_set.t; suite : t }

let fanout ctx f arr = ctx.suite.transport.Transport.fanout.Transport.map f arr

let restarted i =
  Unavailable (Printf.sprintf "representative %d restarted mid-transaction" i)

let call ctx i f =
  let t = ctx.suite in
  let s =
    match Hashtbl.find_opt t.touched ctx.txn with
    | Some s -> s
    | None ->
        let s = { reps = Int_set.empty; incarnations = Hashtbl.create 8 } in
        Hashtbl.replace t.touched ctx.txn s;
        s
  in
  s.reps <- Int_set.add i s.reps;
  let seen = t.transport.Transport.incarnation i in
  (match Hashtbl.find_opt s.incarnations i with
  | None -> Hashtbl.replace s.incarnations i seen
  | Some first when first <> seen -> raise (restarted i)
  | Some _ -> ());
  let check_same_incarnation () =
    match Hashtbl.find_opt s.incarnations i with
    | Some first when t.transport.Transport.incarnation i <> first -> raise (restarted i)
    | _ -> ()
  in
  match Transport.call_exn t.transport i f with
  | r ->
      (* The participant may have restarted while the call was in flight: an
         at-most-once retransmission then re-executed against an amnesiac
         incarnation that knows nothing of the transaction's earlier ops. *)
      check_same_incarnation ();
      r
  | exception e ->
      (* Same window: a re-execution against post-recovery state can fail in
         arbitrary ways (missing endpoints, spurious lock conflicts). The
         restart, not the symptom, is the real error. *)
      check_same_incarnation ();
      raise e

let available ctx i =
  ctx.suite.transport.Transport.is_up i && not (Int_set.mem i ctx.excluded)

let collect_read_quorum ctx =
  match
    Picker.read_quorum ctx.suite.picker ctx.suite.rng ctx.suite.config ~available:(available ctx)
  with
  | Some q -> q
  | None -> raise (Unavailable "cannot collect a read quorum")

let collect_write_quorum ctx =
  match
    Picker.write_quorum ctx.suite.picker ctx.suite.rng ctx.suite.config
      ~available:(available ctx)
  with
  | Some q -> q
  | None -> raise (Unavailable "cannot collect a write quorum")

(* --- DirSuiteLookup (Figure 8) ------------------------------------------------ *)

(* Send DirRepLookup to a read quorum; believe the highest version number.
   Works over bounds so the real-predecessor walk can look up LOW/HIGH,
   which every representative reports present at the lowest version. *)
let suite_lookup_bound ctx bound =
  let quorum = collect_read_quorum ctx in
  let replies =
    fanout ctx (fun i -> call ctx i (fun rep -> Rep.lookup rep ~txn:ctx.txn bound)) quorum
  in
  Array.fold_left
    (fun ((_, bestv, _) as best) reply ->
      let ((_, v, _) as candidate) =
        match reply with
        | Gi.Present { version; value } -> (true, version, value)
        | Gi.Absent { gap_version } -> (false, gap_version, "")
      in
      if v > bestv then candidate else best)
    (false, Version.lowest - 1, "")
    replies

(* --- RealPredecessor / RealSuccessor (Figure 12) ------------------------------- *)

(* Walk downward (resp. upward) through candidate neighbours, skipping
   ghosts, until a key current in the suite is found. Returns the neighbour,
   its current version and value, and the largest gap version seen along the
   walk — which dominates every version ever associated with any key in the
   range, because each step consults a full read quorum. *)
(* Batched walks (§4): each quorum member ships a chain of [depth]
   successive neighbours per call; the walk consumes cached chain elements
   and only re-calls a representative when its chain is exhausted. A chain
   anchored at k0 lists *consecutive* entries of that representative, so for
   any later probe k below the anchor, the first chain element below k is
   exactly that representative's predecessor of k, and the element's
   gap-after version is the gap containing (element, k). *)
let pred_from_cache ctx depth i cache k =
  let covered =
    List.find_opt (fun (n : Gi.neighbor) -> Bound.compare n.Gi.key k < 0) !cache
  in
  match covered with
  | Some n -> n
  | None -> (
      let chain = call ctx i (fun rep -> Rep.predecessor_chain rep ~txn:ctx.txn k ~depth) in
      cache := chain;
      match chain with n :: _ -> n | [] -> assert false)

let succ_from_cache ctx depth i cache k =
  let covered =
    List.find_opt (fun (n : Gi.neighbor) -> Bound.compare n.Gi.key k > 0) !cache
  in
  match covered with
  | Some n -> n
  | None -> (
      let chain = call ctx i (fun rep -> Rep.successor_chain rep ~txn:ctx.txn k ~depth) in
      cache := chain;
      match chain with n :: _ -> n | [] -> assert false)

let real_predecessor_batched ctx depth x =
  let quorum = collect_read_quorum ctx in
  let maxv = ref Version.lowest in
  (* Prefetch every member's first chain concurrently. *)
  let caches =
    fanout ctx
      (fun i ->
        ( i,
          ref
            (call ctx i (fun rep ->
                 Rep.predecessor_chain rep ~txn:ctx.txn (Bound.Key x) ~depth)) ))
      quorum
  in
  let rec walk k =
    let pred = ref Bound.Low in
    Array.iter
      (fun (i, cache) ->
        let n = pred_from_cache ctx depth i cache k in
        pred := Bound.max n.Gi.key !pred;
        maxv := Version.max n.Gi.gap_version !maxv)
      caches;
    let isin, pver, pvalue = suite_lookup_bound ctx !pred in
    if isin then (!pred, pvalue, pver, !maxv) else walk !pred
  in
  walk (Bound.Key x)

let real_successor_batched ctx depth x =
  let quorum = collect_read_quorum ctx in
  let maxv = ref Version.lowest in
  let caches =
    fanout ctx
      (fun i ->
        ( i,
          ref
            (call ctx i (fun rep ->
                 Rep.successor_chain rep ~txn:ctx.txn (Bound.Key x) ~depth)) ))
      quorum
  in
  let rec walk k =
    let succ = ref Bound.High in
    Array.iter
      (fun (i, cache) ->
        let n = succ_from_cache ctx depth i cache k in
        succ := Bound.min n.Gi.key !succ;
        maxv := Version.max n.Gi.gap_version !maxv)
      caches;
    let isin, sver, svalue = suite_lookup_bound ctx !succ in
    if isin then (!succ, svalue, sver, !maxv) else walk !succ
  in
  walk (Bound.Key x)

let real_predecessor_single ctx x =
  let quorum = collect_read_quorum ctx in
  let maxv = ref Version.lowest in
  let rec walk k =
    let neighbours =
      fanout ctx (fun i -> call ctx i (fun rep -> Rep.predecessor rep ~txn:ctx.txn k)) quorum
    in
    let pred = ref Bound.Low in
    Array.iter
      (fun (n : Gi.neighbor) ->
        pred := Bound.max n.Gi.key !pred;
        maxv := Version.max n.Gi.gap_version !maxv)
      neighbours;
    let isin, pver, pvalue = suite_lookup_bound ctx !pred in
    if isin then (!pred, pvalue, pver, !maxv) else walk !pred
  in
  walk (Bound.Key x)

let real_successor_single ctx x =
  let quorum = collect_read_quorum ctx in
  let maxv = ref Version.lowest in
  let rec walk k =
    let neighbours =
      fanout ctx (fun i -> call ctx i (fun rep -> Rep.successor rep ~txn:ctx.txn k)) quorum
    in
    let succ = ref Bound.High in
    Array.iter
      (fun (n : Gi.neighbor) ->
        succ := Bound.min n.Gi.key !succ;
        maxv := Version.max n.Gi.gap_version !maxv)
      neighbours;
    let isin, sver, svalue = suite_lookup_bound ctx !succ in
    if isin then (!succ, svalue, sver, !maxv) else walk !succ
  in
  walk (Bound.Key x)

let real_predecessor ctx x =
  let depth = ctx.suite.batch_depth in
  if depth <= 1 then real_predecessor_single ctx x else real_predecessor_batched ctx depth x

let real_successor ctx x =
  let depth = ctx.suite.batch_depth in
  if depth <= 1 then real_successor_single ctx x else real_successor_batched ctx depth x

(* --- operation bodies ----------------------------------------------------------- *)

let do_lookup ctx key =
  let isin, v, value = suite_lookup_bound ctx (Bound.Key key) in
  if isin then Some (v, value) else None

(* DirSuiteInsert / DirSuiteUpdate (Figure 9).

   [memo] carries the decision across re-runs of the operation body after a
   transport failure: without it, the re-run's lookup would observe the
   operation's *own* uncommitted write and misreport [`Already_present`]
   (and escalate the version). The memoized version also keeps the re-run's
   representative writes literally identical, i.e. idempotent. *)
let do_write ctx memo key value ~must_exist =
  let decide () =
    match !memo with
    | Some d -> d
    | None ->
        let isin, ver, _ = suite_lookup_bound ctx (Bound.Key key) in
        let d =
          if must_exist && not isin then Error `Not_present
          else if (not must_exist) && isin then Error `Already_present
          else Ok (Version.next ver)
        in
        memo := Some d;
        d
  in
  match decide () with
  | Error e -> Error e
  | Ok ver' ->
      let quorum = collect_write_quorum ctx in
      ignore
        (fanout ctx
           (fun i -> call ctx i (fun rep -> Rep.insert rep ~txn:ctx.txn key ver' value))
           quorum);
      Ok ()

(* DirSuiteDelete (Figure 13). *)
let do_delete ctx key =
  let x = Bound.Key key in
  let quorum = collect_write_quorum ctx in
  let succ, svalue, sver, ver1 = real_successor ctx key in
  let pred, pvalue, pver, ver2 = real_predecessor ctx key in
  let isin, vx, _ = suite_lookup_bound ctx x in
  let ver = Version.max (Version.max ver1 ver2) vx in
  (* Make sure the predecessor and successor exist in every quorum member;
     sentinels exist everywhere by construction. *)
  let per_member =
    fanout ctx
      (fun i ->
        let repairs = ref 0 in
        (match succ with
        | Bound.Key sk ->
            (match call ctx i (fun rep -> Rep.lookup rep ~txn:ctx.txn succ) with
            | Gi.Present _ -> ()
            | Gi.Absent _ ->
                incr repairs;
                call ctx i (fun rep -> Rep.insert rep ~txn:ctx.txn sk sver svalue))
        | Bound.Low | Bound.High -> ());
        (match pred with
        | Bound.Key pk ->
            (match call ctx i (fun rep -> Rep.lookup rep ~txn:ctx.txn pred) with
            | Gi.Present _ -> ()
            | Gi.Absent _ ->
                incr repairs;
                call ctx i (fun rep -> Rep.insert rep ~txn:ctx.txn pk pver pvalue))
        | Bound.Low | Bound.High -> ());
        (* Not part of Figure 13: observe whether the victim is physically
           present here, to separate ghost deletions in the statistics. *)
        let has_x =
          match call ctx i (fun rep -> Rep.lookup rep ~txn:ctx.txn x) with
          | Gi.Present _ -> true
          | Gi.Absent _ -> false
        in
        (!repairs, has_x))
      quorum
  in
  let repair_inserts = ref 0 in
  let present_x = ref 0 in
  Array.iter
    (fun (repairs, has_x) ->
      repair_inserts := !repair_inserts + repairs;
      if has_x then incr present_x)
    per_member;
  (* Coalesce the range in each member with a dominating gap version. *)
  let removed =
    fanout ctx
      (fun i ->
        (i, call ctx i (fun rep -> Rep.coalesce rep ~txn:ctx.txn ~lo:pred ~hi:succ (Version.next ver))))
      quorum
  in
  let total_removed = Array.fold_left (fun acc (_, n) -> acc + n) 0 removed in
  {
    was_present = isin;
    removed_per_rep = removed;
    repair_inserts = !repair_inserts;
    ghosts_deleted = total_removed - !present_x;
    pred;
    succ;
  }

(* --- transaction plumbing --------------------------------------------------------- *)

let abort_touched t txn =
  match Hashtbl.find_opt t.touched txn with
  | None -> ()
  | Some s ->
      Int_set.iter
        (fun i ->
          match t.transport.Transport.call i (fun rep -> Rep.abort rep ~txn) with
          | Ok () | Error _ -> ()
          | exception Txn.Abort _ ->
              (* The representative's termination protocol already settled
                 this transaction the other way; nothing left to do here. *)
              ())
        s.reps;
      Hashtbl.remove t.touched txn

(* Single-phase commit: best effort. A representative that crashed after
   doing work for us has already lost its volatile state; its WAL lacks our
   commit record, so recovery discards the work. The quorum intersection
   property keeps the suite correct as long as a write quorum's worth of
   commits survive — two-phase commit (below) closes even that window. *)
let commit_one_phase t txn set =
  Int_set.iter
    (fun i ->
      match t.transport.Transport.call i (fun rep -> Rep.commit rep ~txn) with
      | Ok () | Error _ -> ()
      | exception Txn.Abort _ ->
          (* The representative aborted unilaterally (lease expiry) before
             the commit arrived; single-phase commit is best effort, and
             anti-entropy repairs the divergence. *)
          ())
    set;
  Hashtbl.remove t.touched txn

(* Presumed-abort two-phase commit. The client is the coordinator: it runs an
   explicit prepare round over the participants, force-logs a commit decision
   in its own log before telling anyone, then runs the commit round. Any
   prepare failure decides abort — recorded but never forced, because a
   participant that finds no decision on file presumes abort anyway. *)
let commit_two_phase t txn s =
  (* A yes-vote is only valid from the incarnation that executed the
     transaction's operations: a participant that restarted since first
     contact has lost volatile state (and a crash may have destroyed its
     unforced log records), so whatever it would vote is worthless — checked
     both before preparing and after the vote lands, in case the restart
     happens while the prepare call itself is in flight. *)
  let same_incarnation i =
    match Hashtbl.find_opt s.incarnations i with
    | Some first -> t.transport.Transport.incarnation i = first
    | None -> true
  in
  let coord = Coordinator.id t.coordinator in
  let all_prepared =
    Int_set.for_all
      (fun i ->
        same_incarnation i
        &&
        match t.transport.Transport.call i (fun rep -> Rep.prepare rep ~txn ~coord) with
        | Ok () -> same_incarnation i
        | Error _ -> false
        | exception Txn.Abort _ ->
            (* The representative refused the vote (it lost this
               transaction's effects in a crash, or already aborted it
               unilaterally when its lease expired). *)
            false)
      s.reps
  in
  (* First-writer-wins against the termination protocol: an in-doubt
     participant's resolution query may have already presumed abort, in
     which case our commit decision loses and the round below aborts. *)
  let decision =
    Coordinator.decide t.coordinator txn
      (if all_prepared then Coordinator.Committed else Coordinator.Aborted)
  in
  match decision with
  | Coordinator.Committed ->
      Int_set.iter
        (fun i ->
          match t.transport.Transport.call i (fun rep -> Rep.commit rep ~txn) with
          | Ok () | Error _ ->
              (* A participant that crashed here is in doubt; its recovery
                 re-locks our effects and resolves them by querying this
                 coordinator's decision log. *)
              ()
          | exception Txn.Abort _ ->
              (* Impossible for a prepared participant (it cannot abort once
                 its vote is cast unless we decide so); kept total for
                 duplicate-delivery races. *)
              ())
        s.reps;
      Hashtbl.remove t.touched txn
  | Coordinator.Aborted ->
      abort_touched t txn;
      raise (Unavailable "transaction aborted during two-phase commit")

let commit_touched t txn =
  match Hashtbl.find_opt t.touched txn with
  | None -> ()
  | Some s ->
      if t.two_phase then commit_two_phase t txn s else commit_one_phase t txn s.reps

let with_txn t f =
  let txn = Txn.Manager.begin_txn t.txns in
  match f txn with
  | result -> (
      match commit_touched t txn with
      | () ->
          Txn.Manager.commit t.txns txn;
          result
      | exception e ->
          (* Two-phase commit already aborted the participants. *)
          Txn.Manager.abort t.txns txn;
          raise e)
  | exception e ->
      abort_touched t txn;
      Txn.Manager.abort t.txns txn;
      raise e

(* Bounded client-level retry: transient failures (no quorum right now, a
   deadlock abort) heal with time, so re-running the whole operation — a
   fresh transaction with fresh quorums — after an exponentially backed-off
   pause is the standard recovery. Aborted attempts rolled everything back,
   so a re-run never double-applies. *)
let with_retries ?(attempts = 5) ?(backoff = 1.0) ?(sleep = fun _ -> ()) ?rng f =
  if attempts < 1 then invalid_arg "Suite.with_retries: need at least one attempt";
  let rec go k =
    try f ()
    with
    | (Unavailable _ | Txn.Abort (Txn.Deadlock _) | Txn.Abort (Txn.Unavailable _)) as e ->
      if k + 1 >= attempts then raise e
      else begin
        let jitter = match rng with Some r -> 0.5 +. Rng.float r 1.0 | None -> 1.0 in
        sleep (backoff *. (2.0 ** float_of_int k) *. jitter);
        go (k + 1)
      end
  in
  go 0

(* Run an operation body, re-running with the failed representative excluded
   when the transport fails mid-flight. Representative operations are
   idempotent for fixed arguments, so a re-run only repeats work. *)
let run_op t ?txn body =
  let attempt txn =
    let ctx = { txn; excluded = Int_set.empty; suite = t } in
    let rec go () =
      try body ctx
      with Transport.Rpc_failed (i, _) ->
        ctx.excluded <- Int_set.add i ctx.excluded;
        go ()
    in
    go ()
  in
  match txn with Some txn -> attempt txn | None -> with_txn t attempt

(* --- public operations --------------------------------------------------------------- *)

let lookup ?txn t key = run_op t ?txn (fun ctx -> do_lookup ctx key)
let mem ?txn t key = Option.is_some (lookup ?txn t key)

let insert ?txn t key value =
  let memo = ref None in
  match run_op t ?txn (fun ctx -> do_write ctx memo key value ~must_exist:false) with
  | Ok () -> Ok ()
  | Error `Already_present -> Error `Already_present
  | Error `Not_present -> assert false

let update ?txn t key value =
  let memo = ref None in
  match run_op t ?txn (fun ctx -> do_write ctx memo key value ~must_exist:true) with
  | Ok () -> Ok ()
  | Error `Not_present -> Error `Not_present
  | Error `Already_present -> assert false

let delete ?txn t key = run_op t ?txn (fun ctx -> do_delete ctx key)

(* --- ordered traversal --------------------------------------------------------------- *)

(* The real-successor walk already returns the next *current* entry; the
   sentinels map to None. *)
let next_in ctx key =
  match real_successor ctx key with
  | Bound.Key k, value, ver, _maxv -> Some (k, ver, value)
  | (Bound.High | Bound.Low), _, _, _ -> None

let prev_in ctx key =
  match real_predecessor ctx key with
  | Bound.Key k, value, ver, _maxv -> Some (k, ver, value)
  | (Bound.High | Bound.Low), _, _, _ -> None

let next ?txn t key = run_op t ?txn (fun ctx -> next_in ctx key)
let prev ?txn t key = run_op t ?txn (fun ctx -> prev_in ctx key)

let first ?txn t =
  run_op t ?txn (fun ctx ->
      (* Ask every quorum member for the successor of LOW, take the smallest
         candidate, and resolve it with a suite lookup; if it turns out to be
         a ghost, continue with the normal walk from it. *)
      let quorum = collect_read_quorum ctx in
      let neighbours =
        fanout ctx
          (fun i -> call ctx i (fun rep -> Rep.successor rep ~txn:ctx.txn Bound.Low))
          quorum
      in
      let candidate =
        Array.fold_left (fun acc (n : Gi.neighbor) -> Bound.min acc n.Gi.key) Bound.High
          neighbours
      in
      match candidate with
      | Bound.High | Bound.Low -> None
      | Bound.Key k -> (
          let isin, ver, value = suite_lookup_bound ctx (Bound.Key k) in
          if isin then Some (k, ver, value) else next_in ctx k))

let last ?txn t =
  run_op t ?txn (fun ctx ->
      let quorum = collect_read_quorum ctx in
      let neighbours =
        fanout ctx
          (fun i -> call ctx i (fun rep -> Rep.predecessor rep ~txn:ctx.txn Bound.High))
          quorum
      in
      let candidate =
        Array.fold_left (fun acc (n : Gi.neighbor) -> Bound.max acc n.Gi.key) Bound.Low
          neighbours
      in
      match candidate with
      | Bound.High | Bound.Low -> None
      | Bound.Key k -> (
          let isin, ver, value = suite_lookup_bound ctx (Bound.Key k) in
          if isin then Some (k, ver, value) else prev_in ctx k))

let fold_range ?txn t ~lo ~hi ~init ~f =
  run_op t ?txn (fun ctx ->
      let start =
        let isin, _, value = suite_lookup_bound ctx (Bound.Key lo) in
        if isin then Some (lo, 0, value) else next_in ctx lo
      in
      let rec go acc = function
        | Some (k, _, value) when Key.compare k hi <= 0 ->
            go (f acc k value) (next_in ctx k)
        | Some _ | None -> acc
      in
      go init start)

let to_alist ?txn t =
  run_op t ?txn (fun ctx ->
      let rec go acc = function
        | Some (k, _, value) -> go ((k, value) :: acc) (next_in ctx k)
        | None -> List.rev acc
      in
      let quorum = collect_read_quorum ctx in
      let neighbours =
        fanout ctx
          (fun i -> call ctx i (fun rep -> Rep.successor rep ~txn:ctx.txn Bound.Low))
          quorum
      in
      match
        Array.fold_left (fun acc (n : Gi.neighbor) -> Bound.min acc n.Gi.key) Bound.High
          neighbours
      with
      | Bound.High | Bound.Low -> []
      | Bound.Key k ->
          let isin, _, value = suite_lookup_bound ctx (Bound.Key k) in
          let start = if isin then Some (k, 0, value) else next_in ctx k in
          go [] start)
