open Repdir_rep

type error = Timeout | Down of string | Overloaded of string

let pp_error ppf = function
  | Timeout -> Format.pp_print_string ppf "timeout"
  | Down name -> Format.fprintf ppf "down(%s)" name
  | Overloaded name -> Format.fprintf ppf "overloaded(%s)" name

exception Rpc_failed of int * error

type fanout = { map : 'a 'b. ('a -> 'b) -> 'a array -> 'b array }

let sequential_fanout = { map = (fun f arr -> Array.map f arr) }

type race = { run : 'r. (unit -> 'r) -> after:float -> (unit -> 'r) -> 'r }

type t = {
  n_reps : int;
  is_up : int -> bool;
  incarnation : int -> int;
  call : 'r. int -> (Rep.t -> 'r) -> ('r, error) result;
  fanout : fanout;
  race : race option;
  mutable rpc_count : int;
  mutable retry_count : int;
  mutable msg_count : int;
  mutable bytes_count : int;
}

let local reps =
  {
    n_reps = Array.length reps;
    is_up = (fun i -> not (Rep.is_crashed reps.(i)));
    incarnation = (fun i -> Rep.incarnation reps.(i));
    call =
      (fun i f ->
        try Ok (f reps.(i)) with
        | Rep.Crashed name -> Error (Down name)
        | Rep.Overloaded name -> Error (Overloaded name));
    fanout = sequential_fanout;
    race = None;
    rpc_count = 0;
    retry_count = 0;
    msg_count = 0;
    bytes_count = 0;
  }

let add_bytes t n = t.bytes_count <- t.bytes_count + n

let call_exn t i f =
  t.rpc_count <- t.rpc_count + 1;
  t.msg_count <- t.msg_count + 1;
  match t.call i f with Ok r -> r | Error e -> raise (Rpc_failed (i, e))

let send t i f =
  t.msg_count <- t.msg_count + 1;
  t.call i f
