(** The replicated directory suite — the paper's core algorithm (§3.2).

    A suite combines a configuration (votes, R, W), a quorum-selection
    strategy, and a transport to the representatives. Operations follow the
    paper's figures:

    - {!lookup} — Figure 8: read from a read quorum, answer with the highest
      version number's reply.
    - {!insert}/{!update} — Figure 9: read the key's current version from a
      read quorum, write the entry with version+1 to a write quorum.
    - {!delete} — Figures 12/13: locate the real predecessor and real
      successor (skipping ghosts), copy them to write-quorum members that
      lack them, then coalesce the range with a dominating gap version.

    Each public operation runs inside its own transaction unless an explicit
    transaction (created with {!with_txn}) is supplied; locks follow strict
    2PL at every representative, and commit/abort is propagated to every
    representative the transaction touched.

    Transport failures mid-operation are handled by excluding the failed
    representative and re-running the operation body with a fresh quorum;
    representative operations are idempotent for fixed arguments, so re-runs
    are safe. If no quorum can be collected the operation raises
    {!Unavailable} after aborting its transaction. *)

open Repdir_key
open Repdir_quorum
open Repdir_txn

type value = string

exception Unavailable of string

exception Deadline_exceeded of string
(** An operation ran out of its deadline budget (see [op_deadline] on
    {!create}): either a representative refused the already-expired work
    ({!Repdir_rep.Rep.Deadline_exceeded}) or the client noticed the expiry
    before re-running the operation body. The operation's transaction was
    aborted and rolled back like any other failure; deliberately {e not}
    retried by {!with_retries} — deadlines exist to fail fast. *)

(** Client-side retry budget: a token bucket shared across one client's
    operations, plugged into {!with_retries}. Every retry spends one token;
    every overall success earns [earn] back (capped at [cap]). Under
    sporadic failures the bucket hovers near its cap and retries proceed as
    normal; under sustained unavailability it empties and retries are
    refused — the client fails fast instead of amplifying a brownout into a
    retry storm. *)
module Retry_budget : sig
  type t

  val create : ?cap:float -> ?earn:float -> unit -> t
  (** Defaults: [cap = 10.0] tokens (also the initial balance),
      [earn = 0.1] per success — steady-state retries are limited to about
      one per ten successes. *)

  val tokens : t -> float
  val try_spend : t -> bool
  val earn : t -> unit
end

type t

type shard_info = { shard_label : unit -> string; shard_epoch : unit -> int }
(** Sharding hook, attached by the multi-group router
    ({!Repdir_shard.Router}) to each per-group suite. The closures read the
    router's current shard map, so this module never depends on the shard
    library. [shard_epoch] stamps every representative call (fenced
    server-side with {!Repdir_rep.Rep.shard_fence_check}, exactly parallel
    to the membership fence); [shard_label] names the owned range and group,
    appended to quorum-failure messages so a sharded campaign's
    {!Unavailable} errors are attributable to a shard. *)

val create :
  ?picker:Picker.strategy ->
  ?seed:int64 ->
  ?two_phase:bool ->
  ?coordinator:Coordinator.t ->
  ?batch_depth:int ->
  ?sync:Repdir_sync.Sync.t ->
  ?batching:bool ->
  ?timers:Repdir_rep.Rep.timers ->
  ?notice_window:float ->
  ?recorder:Repdir_audit.History.recorder ->
  ?membership:Repdir_member.Member.record ->
  ?shard:shard_info ->
  ?op_deadline:float ->
  ?hedge:float ->
  ?cache:Repdir_cache.Cache.t ->
  config:Config.t ->
  transport:Transport.t ->
  txns:Txn.Manager.t ->
  unit ->
  t
(** [two_phase] (default false) commits transactions with presumed-abort
    two-phase commit, this client acting as [coordinator] (default: a fresh
    private one): prepare at every touched representative — each vote
    durably records the coordinator's node id — force-log the commit
    decision in the coordinator's own log, then run the commit round. Any
    prepare failure decides abort. A participant that crashes or loses
    contact between prepare and commit holds the transaction in doubt and
    resolves it through the termination protocol (querying this
    coordinator's decision log, or a peer) — so either all representatives
    eventually apply the transaction or none do. With the default
    single-phase commit, a representative that crashes during the commit
    round simply loses the transaction's effects locally (safe for quorum
    reasons but not atomic).

    [batch_depth] (default 1) enables the §4 batching: real-predecessor/
    successor walks ask each quorum member for [batch_depth] successive
    neighbours per call, so "the real predecessor and real successor will
    often be located using one remote procedure call to each member of the
    quorum". Depth 1 reproduces the paper's pseudo-code exactly.

    [sync] attaches the background anti-entropy actor reconciling this
    suite's representatives (see {!Repdir_sync.Sync}); the suite exposes its
    enable switch and traffic counters but the actor runs independently of
    client operations.

    [batching] (default false — the seed behaviour) turns on per-
    representative message batching: each round of an operation packs its
    per-member representative calls into one {!Repdir_rep.Rep.execute}
    message (e.g. a delete's repair checks + copies + victim probe +
    coalesce become one message per write-quorum member), write quorums
    prefer members the transaction already touched, the two-phase-commit
    prepare of a single-operation transaction is piggybacked on its final
    work round, a read-only visit is released in-round
    ({!Repdir_rep.Rep.finish_readonly}), and commit-round deliveries are
    deferred as notices that ride on later messages. Observationally
    equivalent to the unbatched suite op by op; only the message count (and
    the moment locks of *committed* transactions are released) changes.
    Deferred commit notices rely on the representatives' lease/termination
    protocol as a backstop, so long-lived deployments should run with leases
    on; [notice_window] (default 5.0 time units, needs [timers]) bounds how
    long a notice may wait before a dedicated flush message carries it.

    [recorder] attaches a consistency-audit history recorder
    ({!Repdir_audit.History}): every single-key operation
    (lookup/insert/update/delete) is recorded with its observed result, and
    each transaction's completion is stamped [`Ok] (committed), [`Failed]
    (cleanly aborted — under two-phase commit the client's own decision log
    is authoritative, so a failure with no commit decision is a presumed
    abort), or [`Ambiguous] (the outcome could not be pinned down; with
    single-phase commit every unclear outcome is ambiguous). Range
    traversals ([next]/[prev]/[first]/[last]/[fold_range]) are not
    recorded.

    [membership] arms dynamic membership: quorums are collected from the
    record's view(s) instead of [config] — {i both} views of a joint record,
    so quorums on either side of a transition intersect — and every
    representative call is stamped with the record's epoch and fenced
    server-side ({!Repdir_rep.Rep.fence_check}). Absent (the default), the
    suite behaves exactly as before this subsystem existed: static
    configuration, no stamping, identical quorum selection and RNG
    consumption.

    [op_deadline] (off by default; needs [timers]) gives every operation a
    deadline budget: converted to an absolute deadline when the operation
    starts, stamped on each of its RPCs (representatives refuse
    already-expired work — {!Repdir_rep.Rep.reject_expired}), and checked
    client-side before every body re-run, so an operation that burned its
    budget on timeouts raises {!Deadline_exceeded} instead of collecting yet
    another quorum. Termination traffic is never stamped: a prepared
    transaction must settle however late.

    [hedge] (off by default) arms hedged quorum lookups against gray
    replicas: when the read-quorum member with the worst smoothed latency
    looks gray — flagged as an outlier, or, during the detection lag before
    enough samples accumulate, already {!Picker.Health.suspect} next to the
    spare — it is raced against a healthy spare replica carrying at least as
    many votes, the backup starting after the healthy population's p99
    latency (never below the [hedge] floor), first reply wins. A healthy
    quorum is never hedged, and an outlier is never
    used as the spare: the speculative call executes at the spare and makes
    it a termination-round participant, so hedging toward a gray replica
    would add it to the very critical path the quorum avoided. Requires a
    {!Picker.strategy.Healthy} picker (which supplies the latency scores;
    [Invalid_argument] otherwise), a transport with a {!Transport.race}
    primitive, [timers], and static membership — with any of those missing,
    lookups simply fan out unhedged.

    [cache] (off by default — the seed behaviour) attaches a version-
    validated client cache ({!Repdir_cache.Cache}) of entries {e and} gaps,
    turning quorum reads into Gifford-style weak-representative
    validations: the read quorum is still collected — same members, same
    {!Repdir_rep.Rep.validate_versions} point locks, same serialization
    point — but the members return version tags with no payload, and the
    full value travels from at most one (healthiest) member, only when the
    cached line is missing or its version disagrees with the winning tag. A
    cache hit on a present entry, and {e every} read of an absent key (the
    winning gap tag is the whole answer), complete with zero payload bytes
    on the wire. Cached lines are installed and invalidated only when the
    writing transaction commits, are dropped when the membership epoch
    advances, and are tagged with the epoch they were read under — so
    caching is observationally invisible: every operation returns exactly
    what the uncached suite would have returned. *)

val config : t -> Config.t

val membership : t -> Repdir_member.Member.record option
(** The membership record this suite currently stamps its calls with. It
    advances when a fencing representative hands back a newer record
    ({!Repdir_rep.Rep.Stale_epoch} adoption) or via {!set_membership}. *)

val epoch : t -> int
(** The current membership epoch (0 when membership is off). *)

val shard_epoch : t -> int
(** The shard-map epoch this suite currently stamps its calls with (0 when
    no {!shard_info} is attached). *)

val sync_cache_epoch : t -> unit
(** Re-derive the attached cache's epoch tag from the current membership
    {e and} shard epochs, flushing every line if either advanced. The suite
    calls this itself on membership adoption; the shard router calls it when
    it adopts a newer shard map, so lines cached under the old owning group
    of a migrated range die immediately. No-op without a cache. *)

val set_membership : t -> Repdir_member.Member.record -> unit
(** Replace the suite's membership record — the reconfiguration driver's
    hook for advancing its own view after writing a new record. Client
    suites instead learn by fencing: a stale-epoch rejection carries the
    newer record and the operation retries under it (single-operation
    transactions re-run in place; an explicit transaction aborts with
    [Txn.Abort (Unavailable _)] and should be retried wholesale). When no
    quorum can be collected during a transition, the {!Unavailable} message
    names the epoch of the view that failed. *)

val transport : t -> Transport.t

val coordinator : t -> Coordinator.t
(** The decision log this suite commits against when [two_phase] is on. *)

val batching : t -> bool

val flush_notices : t -> unit
(** Deliver every queued termination notice now, one message per
    representative with a non-empty queue. Failed deliveries re-queue
    (delivery is idempotent). The flush timer calls this automatically;
    harnesses call it to quiesce before auditing lock or in-doubt
    residue. *)

val pending_notice_count : t -> int
(** Termination notices queued but not yet delivered (0 when batching is
    off or the pipeline has drained). *)

val sync : t -> Repdir_sync.Sync.t option

val hedged_count : t -> int
(** Hedge backups actually launched by this suite (0 unless [hedge] is
    armed and the p99 delay has fired with a spare available). *)

val cache : t -> Repdir_cache.Cache.t option
(** The attached client cache, if any. *)

val cache_counters : t -> Repdir_cache.Cache.counters option
(** Hit/miss/mismatch/invalidation counters of the attached cache. *)

val sync_counters : t -> Repdir_sync.Sync.counters option
(** Sync-traffic counters of the attached anti-entropy actor, if any. *)

val set_sync_enabled : t -> bool -> unit
(** Toggle the attached anti-entropy actor. Raises [Invalid_argument] when no
    actor is attached. *)

(** Everything {!delete} did, for the paper's §4 statistics. *)
type delete_report = {
  was_present : bool;  (** the key had a current entry before the delete *)
  removed_per_rep : (int * int) array;
      (** per write-quorum member: (representative index, entries removed by
          its coalesce) — the "entries in ranges coalesced" samples *)
  repair_inserts : int;
      (** real-predecessor/successor copies installed — "insertions while
          coalescing" *)
  ghosts_deleted : int;
      (** entries removed that were not the deleted key itself — "deletions
          while coalescing" *)
  pred : Bound.t;  (** the real predecessor used for the coalesce *)
  succ : Bound.t;  (** the real successor *)
}

(* --- user operations ------------------------------------------------------- *)

val lookup : ?txn:Txn.id -> t -> Key.t -> (Version.t * value) option

val mem : ?txn:Txn.id -> t -> Key.t -> bool

val insert : ?txn:Txn.id -> t -> Key.t -> value -> (unit, [ `Already_present ]) result

val update : ?txn:Txn.id -> t -> Key.t -> value -> (unit, [ `Not_present ]) result

val delete : ?txn:Txn.id -> t -> Key.t -> delete_report
(** Deleting an absent key is permitted (Figure 13 never tests presence): the
    surrounding range is still coalesced, which may clean up ghosts; the
    report has [was_present = false]. *)

(* --- ordered traversal ------------------------------------------------------ *)

val next : ?txn:Txn.id -> t -> Key.t -> (Key.t * Version.t * value) option
(** Smallest *current* entry with key strictly greater than the argument
    (ghosts are skipped via the real-successor walk of Figure 12); [None] at
    the end of the directory. The argument need not be present. *)

val prev : ?txn:Txn.id -> t -> Key.t -> (Key.t * Version.t * value) option
(** Mirror of {!next}. *)

val first : ?txn:Txn.id -> t -> (Key.t * Version.t * value) option
val last : ?txn:Txn.id -> t -> (Key.t * Version.t * value) option

val fold_range :
  ?txn:Txn.id -> t -> lo:Key.t -> hi:Key.t -> init:'a -> f:('a -> Key.t -> value -> 'a) -> 'a
(** Fold over current entries with [lo <= key <= hi] in ascending order; one
    transaction covers the whole scan, so the result is a consistent
    snapshot under strict 2PL. *)

val to_alist : ?txn:Txn.id -> t -> (Key.t * value) list
(** The whole directory, ascending — a consistent snapshot. *)

(* --- multi-operation transactions ------------------------------------------ *)

val with_txn : t -> (Txn.id -> 'a) -> 'a
(** Run several suite operations as one atomic transaction: 2PL locks are
    held across the whole body and released at the commit (or rollback on
    exception, which is then re-raised). *)

(* --- cross-shard two-phase commit ------------------------------------------- *)

(* A transaction that touched several shard groups spans several suites (one
   per group), all sharing one transaction manager and one client
   coordinator. The router ({!Repdir_shard.Router.with_txn}) drives the
   protocol with the hooks below: [cross_prepare] on every touched suite,
   ONE [Coordinator.decide] — the client's single forced decision record
   covers all groups' participants, who all recorded the same coordinator id
   at prepare time — then [cross_commit] or [cross_abort] on every suite.
   Requires [two_phase] and a shared [coordinator] on all suites involved. *)

val cross_prepare : t -> Txn.id -> bool
(** Run this suite's prepare round for the transaction: release read-only
    participants, collect durable yes votes from the rest. [true] when every
    remaining participant voted yes (vacuously when the transaction never
    touched this suite). Decides nothing. *)

val cross_commit : t -> Txn.id -> unit
(** Deliver the committed decision to this suite's prepared participants and
    apply its staged cache lines. Only sound after the shared coordinator
    force-logged [Committed] for this transaction. *)

val cross_abort : t -> Txn.id -> unit
(** Abort this suite's participants and drop its staged cache lines. *)

val has_participants : t -> Txn.id -> bool
(** Whether the transaction still has unreleased participants at this suite
    — i.e. whether it did any (non-released) work here. *)

val record_finish : t -> txn:Txn.id -> Repdir_audit.History.status -> unit
(** Stamp the transaction's completion on this suite's recorder (no-op
    without one). Single-suite transactions are stamped by {!with_txn};
    the cross-shard driver stamps exactly once, through one suite, since
    all of a client's per-group suites share one recorder. *)

val failed_commit_status : t -> Txn.id -> Repdir_audit.History.status
(** Outcome classification when a commit path raised: [`Failed] when the
    shared coordinator's decision log shows a (presumed) abort, [`Ambiguous]
    when a commit decision exists but the failure hid whether it was
    delivered — the cross-shard driver's analogue of what {!with_txn} stamps
    internally. *)

(* --- client-level retry ----------------------------------------------------- *)

val with_retries :
  ?attempts:int ->
  ?backoff:float ->
  ?deadline:float ->
  ?budget:Retry_budget.t ->
  ?sleep:(float -> unit) ->
  ?rng:Repdir_util.Rng.t ->
  (unit -> 'a) ->
  'a
(** [with_retries f] runs [f], re-running it when it fails transiently —
    {!Unavailable} (no quorum) or a transaction abort for deadlock or
    unavailability — up to [attempts] times total (default 5). Failed
    attempts were rolled back by the transaction machinery, so re-running is
    safe. Between attempts it calls [sleep] (default: none — e.g.
    [Sim.sleep sim] on the simulator) with an exponential backoff starting
    at [backoff] (default 1.0), jittered uniformly in [0.5, 1.5) when [rng]
    is supplied. The final failure is re-raised; non-transient exceptions
    propagate immediately ({!Deadline_exceeded} in particular is never
    retried).

    [deadline] caps the cumulative backoff sleep (default [48 * backoff]):
    a retry whose pause would push total sleeping past it re-raises the
    failure instead — the attempt count alone is unbounded in wall-clock
    terms once backoff growth compounds. The default never binds for the
    default schedule (worst case ~22.5 × backoff) but keeps any
    [attempts]/[backoff] combination finite in time. [budget] plugs in a
    shared {!Retry_budget}: each retry must buy a token (re-raising the
    failure when the bucket is dry) and each success earns a fraction back,
    so sustained unavailability makes this client fail fast rather than
    retry-storm. *)
