(** How a directory-suite client reaches representatives.

    The suite algorithm is written against this record so the same code runs
    over direct function calls ({!local} — the configuration used for the
    paper's §4 statistical simulations) and over the discrete-event
    simulator's RPC layer with latency, crashes and timeouts
    ({!Repdir_harness.Sim_world}). *)

open Repdir_rep

type error =
  | Timeout  (** no reply within the RPC deadline *)
  | Down of string  (** the representative is crashed *)
  | Overloaded of string
      (** the representative's admission controller rejected the request
          ({!Repdir_rep.Rep.Overloaded}): it is alive but shedding load. The
          suite treats it like any other transport failure — the
          representative is excluded for the rest of the operation, which
          re-runs on a fresh quorum, so overloaded replicas are never
          quorum-eligible for the retry. *)

val pp_error : Format.formatter -> error -> unit

exception Rpc_failed of int * error
(** Raised by suite internals when a representative call fails; carries the
    representative index. *)

(** Fan-out strategy for independent per-representative work within one
    operation. The paper's pseudo-code sends quorum requests one at a time;
    §5 notes message traffic and latency can be improved — a parallel fanout
    (the simulator's fork/join) overlaps the round trips. Results keep array
    order; if any branch raises, the first (by index) exception is re-raised
    after all branches finish. *)
type fanout = { map : 'a 'b. ('a -> 'b) -> 'a array -> 'b array }

val sequential_fanout : fanout

(** Hedged-request primitive: [run primary ~after backup] starts [primary]
    at once and, if it has not finished within [after] time units, starts
    [backup] too; the first branch to return a value wins. A branch that
    raises merely cedes the race — its exception is discarded while the
    other branch is still in play; only when every started branch has failed
    is the primary's exception re-raised. The losing branch keeps running in
    the background to completion (its result and exceptions are swallowed),
    as a real hedged RPC's late reply would be. Requires a scheduler, so
    transports without one ({!local}) offer no race. *)
type race = { run : 'r. (unit -> 'r) -> after:float -> (unit -> 'r) -> 'r }

type t = {
  n_reps : int;
  is_up : int -> bool;
      (** Availability hint used for quorum selection; a representative that
          looks up may still fail mid-call. *)
  incarnation : int -> int;
      (** The representative's current incarnation number (recovery count),
          as a session layer would learn it from reply metadata. A change
          between two reads brackets a restart: the representative has lost
          all volatile state it held for the caller. *)
  call : 'r. int -> (Rep.t -> 'r) -> ('r, error) result;
      (** Run one representative operation. Exceptions raised by the
          operation itself (deadlock aborts, missing endpoints) propagate;
          [Error] is reserved for transport-level failures. *)
  fanout : fanout;
  race : race option;
      (** Hedging support, when the transport has a scheduler to race two
          calls ([None] for {!local} and sequential transports — hedging is
          silently unavailable there). *)
  mutable rpc_count : int;  (** total calls issued, for the statistics *)
  mutable retry_count : int;
      (** transport-level retransmissions performed under the calls (0 for
          transports without a retry layer) *)
  mutable msg_count : int;
      (** total messages put on the wire: every operation call ({!call_exn}),
          every termination-round message ({!send}), and — for transports
          with a retry layer — every retransmission. [rpc_count] keeps its
          historical meaning (operation calls only), so the §4 tables can
          report calls and true messages side by side. A batched round is one
          message however many ops it carries. *)
  mutable bytes_count : int;
      (** estimated payload bytes put on the wire (requests and replies),
          accounted by the suite with {!add_bytes} from a fixed serialization
          model — the currency the version-validated cache saves: a
          validation reply carries a version tag where a lookup reply carries
          the full value. Retransmissions are not re-counted (the model
          tracks the client's logical traffic, which is what cache on/off
          comparisons need to hold constant elsewhere). *)
}

val local : Rep.t array -> t
(** Zero-latency transport over in-process representatives. A crashed
    representative reports [Down]. *)

val call_exn : t -> int -> (Rep.t -> 'r) -> 'r
(** Like [call] but raising {!Rpc_failed}, and counting the call (in both
    [rpc_count] and [msg_count]). *)

val send : t -> int -> (Rep.t -> 'r) -> ('r, error) result
(** Like [call] but counted in [msg_count] only: a termination-round message
    (prepare/commit/abort/notice flush), which the historical [rpc_count]
    never included. *)

val add_bytes : t -> int -> unit
(** Charge [n] estimated wire bytes to [bytes_count]. *)
