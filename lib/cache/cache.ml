open Repdir_key

type line =
  | Entry of { version : Version.t; value : string }
  | Gap of { version : Version.t }

type counters = {
  mutable hits : int;
  mutable misses : int;
  mutable mismatches : int;
  mutable stores : int;
  mutable invalidations : int;
  mutable flushes : int;
  mutable evictions : int;
}

(* Intrusive doubly-linked LRU list: [head] is the most recently used node,
   [tail] the eviction candidate. Sentinels keep the unlink arithmetic
   branch-free. *)
type node = {
  key : Bound.t;
  mutable line : line;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  capacity : int;
  table : (Bound.t, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable epoch : int;
  c : counters;
}

let create ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create (min capacity 64);
    head = None;
    tail = None;
    epoch = 0;
    c =
      {
        hits = 0;
        misses = 0;
        mismatches = 0;
        stores = 0;
        invalidations = 0;
        flushes = 0;
        evictions = 0;
      };
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let counters t = t.c
let epoch t = t.epoch

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.prev <- None;
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  match t.head with
  | Some h when h == n -> ()
  | _ ->
      unlink t n;
      push_front t n

let flush t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.c.flushes <- t.c.flushes + 1

let sync_epoch t ~epoch =
  if epoch <> t.epoch then begin
    flush t;
    t.epoch <- epoch
  end

let find t ~epoch key =
  sync_epoch t ~epoch;
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some n ->
      touch t n;
      Some n.line

let evict t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.key;
      t.c.evictions <- t.c.evictions + 1

let store t ~epoch key line =
  sync_epoch t ~epoch;
  t.c.stores <- t.c.stores + 1;
  match Hashtbl.find_opt t.table key with
  | Some n ->
      n.line <- line;
      touch t n
  | None ->
      if Hashtbl.length t.table >= t.capacity then evict t;
      let n = { key; line; prev = None; next = None } in
      Hashtbl.replace t.table key n;
      push_front t n

let invalidate t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table key;
      t.c.invalidations <- t.c.invalidations + 1

let invalidate_range t ~lo ~hi =
  (* Lines are unordered in the table; a committed delete's coalesce range is
     narrow (pred, succ) while the cache may be large, so collect-then-drop
     keeps this a single pass without an ordered index. *)
  let doomed =
    Hashtbl.fold
      (fun k _ acc ->
        if Bound.compare lo k < 0 && Bound.compare k hi < 0 then k :: acc else acc)
      t.table []
  in
  List.iter (invalidate t) doomed

let note t = function
  | `Hit -> t.c.hits <- t.c.hits + 1
  | `Miss -> t.c.misses <- t.c.misses + 1
  | `Mismatch -> t.c.mismatches <- t.c.mismatches + 1

let sum_counters cs =
  let z =
    {
      hits = 0;
      misses = 0;
      mismatches = 0;
      stores = 0;
      invalidations = 0;
      flushes = 0;
      evictions = 0;
    }
  in
  List.iter
    (fun c ->
      z.hits <- z.hits + c.hits;
      z.misses <- z.misses + c.misses;
      z.mismatches <- z.mismatches + c.mismatches;
      z.stores <- z.stores + c.stores;
      z.invalidations <- z.invalidations + c.invalidations;
      z.flushes <- z.flushes + c.flushes;
      z.evictions <- z.evictions + c.evictions)
    cs;
  z

let hit_rate t =
  let reads = t.c.hits + t.c.misses + t.c.mismatches in
  if reads = 0 then 0.0 else float_of_int t.c.hits /. float_of_int reads

let pp_counters ppf c =
  Format.fprintf ppf
    "hits=%d misses=%d mismatches=%d stores=%d invalidations=%d flushes=%d evictions=%d"
    c.hits c.misses c.mismatches c.stores c.invalidations c.flushes c.evictions
