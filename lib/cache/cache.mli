(** Client-side entry/gap cache — a weak representative.

    Gifford's weighted voting anticipates caches as {e weak representatives}:
    copies holding zero votes that may serve a read only after the real
    representatives prove the copy current. The paper's gap version numbers
    make that proof cheap for a directory: every key — present or absent —
    has a version (its entry's, or its containing gap's), so a cached entry
    {e or} a cached absence can be validated against a read quorum by
    comparing version tags alone, with no payload on the wire.

    One cache belongs to one suite (one client). Lines are tagged with the
    membership epoch they were learned under; any epoch change flushes the
    whole cache — version tags prove currency only against quorums of the
    view that produced them. The suite stages all stores transactionally and
    applies them only at commit: populating from a transaction's own
    uncommitted write would let an aborted version number collide with a
    later committed write of the same version.

    The structure is a bounded LRU: [find] refreshes recency, [store] evicts
    the coldest line past [capacity]. *)

open Repdir_key

(** One cached fact about a key: it is present at [version] with [value], or
    absent under a gap at [version]. Either claim is current iff a read
    quorum's highest version tag for the key equals [version] (and agrees on
    presence). *)
type line =
  | Entry of { version : Version.t; value : string }
  | Gap of { version : Version.t }

type counters = {
  mutable hits : int;  (** validated reads served without payload *)
  mutable misses : int;  (** reads that found no line *)
  mutable mismatches : int;  (** lines contradicted by quorum version tags *)
  mutable stores : int;  (** lines installed or overwritten *)
  mutable invalidations : int;  (** lines dropped by writes (range coalesce) *)
  mutable flushes : int;  (** whole-cache drops (membership epoch change) *)
  mutable evictions : int;  (** coldest lines dropped at capacity *)
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 1024) bounds the number of lines; the least recently
    used line is evicted first. *)

val capacity : t -> int
val length : t -> int
val counters : t -> counters
val epoch : t -> int
(** The membership epoch every current line was learned under. *)

val sync_epoch : t -> epoch:int -> unit
(** Flush the cache if [epoch] differs from the lines' epoch, and adopt it.
    [find]/[store] run this implicitly; the suite also calls it eagerly when
    it adopts a newer membership record. A flush of an already-empty cache
    still counts (the epoch still moved). *)

val find : t -> epoch:int -> Bound.t -> line option
(** The cached line for a key, refreshing its recency. An [epoch] different
    from the cache's flushes everything first (and returns [None]). Does NOT
    touch the hit/miss counters — whether a line survives quorum validation
    is the suite's verdict, reported via {!note}. *)

val store : t -> epoch:int -> Bound.t -> line -> unit
val invalidate : t -> Bound.t -> unit
val invalidate_range : t -> lo:Bound.t -> hi:Bound.t -> unit
(** Drop every line for a key strictly inside [(lo, hi)] — the suite runs
    this when a committed delete coalesces the range, superseding any cached
    entry or gap version inside it. *)

val flush : t -> unit

val note : t -> [ `Hit | `Miss | `Mismatch ] -> unit
(** Record the suite's validation verdict for one read. *)

val hit_rate : t -> float
(** [hits / (hits + misses + mismatches)]; 0 before any read. *)

val sum_counters : counters list -> counters
(** Field-wise sum — aggregating the per-client caches of a campaign. *)

val pp_counters : Format.formatter -> counters -> unit
