(* Obviously-correct gap map over a sorted association list. This is the
   executable specification: the B+tree implementation is property-tested
   against it. Performance is O(n) per operation, which is fine for tests and
   for the paper-scale simulations (directories of 100–10 000 entries). *)

open Repdir_key
open Gapmap_intf

type stored = {
  key : Key.t;
  mutable version : Version.t;
  mutable value : value;
  mutable gap_after : Version.t; (* version of the gap following this entry *)
}

type t = {
  mutable low_gap : Version.t; (* gap between LOW and the first entry *)
  mutable items : stored list; (* ascending key order *)
}

let create () = { low_gap = Version.lowest; items = [] }
let size t = List.length t.items
let mem t k = List.exists (fun s -> Key.equal s.key k) t.items

let sentinel_lookup = Present { version = Version.lowest; value = "" }

let lookup t bound =
  match bound with
  | Bound.Low | Bound.High -> sentinel_lookup
  | Bound.Key k ->
      let rec scan gap_before = function
        | [] -> Absent { gap_version = gap_before }
        | s :: rest ->
            let c = Key.compare s.key k in
            if c = 0 then Present { version = s.version; value = s.value }
            else if c < 0 then scan s.gap_after rest
            else Absent { gap_version = gap_before }
      in
      scan t.low_gap t.items

let predecessor t bound =
  if Bound.equal bound Bound.Low then invalid_arg "Gapmap.predecessor: LOW";
  let rec scan best = function
    | [] -> best
    | s :: rest ->
        if Bound.compare (Bound.Key s.key) bound < 0 then scan (Some s) rest else best
  in
  match scan None t.items with
  | Some s ->
      { key = Bound.Key s.key; entry_version = Some s.version; gap_version = s.gap_after }
  | None -> { key = Bound.Low; entry_version = None; gap_version = t.low_gap }

let successor t bound =
  if Bound.equal bound Bound.High then invalid_arg "Gapmap.successor: HIGH";
  (* The gap between [bound] and its successor is the gap following the
     largest entry at or below [bound] (or the LOW gap if there is none). *)
  let rec scan gap_before = function
    | [] -> ({ key = Bound.High; entry_version = None; gap_version = gap_before } : neighbor)
    | s :: rest ->
        if Bound.compare (Bound.Key s.key) bound <= 0 then scan s.gap_after rest
        else
          { key = Bound.Key s.key; entry_version = Some s.version; gap_version = gap_before }
  in
  scan t.low_gap t.items

let insert t k version value =
  (* A fresh entry splits the gap containing it; both halves keep the old
     gap's version, so the new entry's [gap_after] is simply the version of
     the gap it lands in, and its predecessor's [gap_after] is unchanged. *)
  let rec go gap_before = function
    | [] -> [ { key = k; version; value; gap_after = gap_before } ]
    | s :: rest as items ->
        let c = Key.compare k s.key in
        if c = 0 then begin
          s.version <- version;
          s.value <- value;
          items
        end
        else if c < 0 then { key = k; version; value; gap_after = gap_before } :: items
        else s :: go s.gap_after rest
  in
  t.items <- go t.low_gap t.items

let endpoint_exists t = function
  | Bound.Low | Bound.High -> true
  | Bound.Key k -> mem t k

let coalesce t ~lo ~hi version =
  if Bound.compare lo hi >= 0 then invalid_arg "Gapmap.coalesce: lo >= hi";
  if not (endpoint_exists t lo) then raise (Missing_endpoint lo);
  if not (endpoint_exists t hi) then raise (Missing_endpoint hi);
  let inside s =
    Bound.compare lo (Bound.Key s.key) < 0 && Bound.compare (Bound.Key s.key) hi < 0
  in
  let removed = List.length (List.filter inside t.items) in
  t.items <- List.filter (fun s -> not (inside s)) t.items;
  (match lo with
  | Bound.Low -> t.low_gap <- version
  | Bound.Key k ->
      let s = List.find (fun s -> Key.equal s.key k) t.items in
      s.gap_after <- version
  | Bound.High -> assert false);
  removed

let remove t k =
  if mem t k then begin
    t.items <- List.filter (fun s -> not (Key.equal s.key k)) t.items;
    true
  end
  else false

let set_gap_after t b version =
  match b with
  | Bound.High -> invalid_arg "Gapmap.set_gap_after: HIGH"
  | Bound.Low -> t.low_gap <- version
  | Bound.Key k -> (
      match List.find_opt (fun s -> Key.equal s.key k) t.items with
      | Some s -> s.gap_after <- version
      | None -> raise (Missing_endpoint b))

let entries t = List.map (fun s -> (s.key, s.version, s.value)) t.items

let gaps t =
  let rec go left gap_version = function
    | [] -> [ (left, Bound.High, gap_version) ]
    | s :: rest -> (left, Bound.Key s.key, gap_version) :: go (Bound.Key s.key) s.gap_after rest
  in
  go Bound.Low t.low_gap t.items

let count_strictly_between t ~lo ~hi =
  List.length
    (List.filter
       (fun s ->
         Bound.compare lo (Bound.Key s.key) < 0 && Bound.compare (Bound.Key s.key) hi < 0)
       t.items)

let entries_between t ~lo ~hi =
  List.filter_map
    (fun s ->
      if Bound.compare lo (Bound.Key s.key) < 0 && Bound.compare (Bound.Key s.key) hi < 0
      then Some (s.key, s.version, s.value, s.gap_after)
      else None)
    t.items

let check_invariants t =
  let rec ordered = function
    | a :: (b :: _ as rest) ->
        if Key.compare a.key b.key >= 0 then
          Error
            (Format.asprintf "entries out of order: %a >= %a" Key.pp a.key Key.pp b.key)
        else ordered rest
    | _ -> Ok ()
  in
  ordered t.items

let pp ppf t =
  Format.fprintf ppf "LOW -%a-" Version.pp t.low_gap;
  List.iter
    (fun s -> Format.fprintf ppf " %a:%a -%a-" Key.pp s.key Version.pp s.version Version.pp s.gap_after)
    t.items;
  Format.fprintf ppf " HIGH"

include Gapmap_intf.Sync_ops (struct
  type nonrec t = t

  let create = create
  let size = size
  let mem = mem
  let lookup = lookup
  let predecessor = predecessor
  let successor = successor
  let insert = insert
  let coalesce = coalesce
  let remove = remove
  let set_gap_after = set_gap_after
  let entries = entries
  let gaps = gaps
  let count_strictly_between = count_strictly_between
  let entries_between = entries_between
  let check_invariants = check_invariants
  let pp = pp
end)
