(* Imperative B+tree gap map.

   Entries live in the leaves in key order; internal nodes hold separator
   keys only. As §5 of the paper suggests, each gap's version number is
   stored in a field of its bounding entry: entry [e] carries [gap_after],
   the version of the gap between [e] and the next entry (or HIGH). The gap
   between LOW and the first entry is held at the tree root ([low_gap]).

   Structure invariants (verified by [check_invariants]):
   - separator convention: keys in [kids.(i)] are [< keys.(i)]; keys in
     [kids.(i+1)] are [>= keys.(i)];
   - every leaf except a root leaf holds between [branching/2] and
     [branching] entries; every internal node except the root has between
     [branching/2] and [branching] children; the root has at least 2;
   - all leaves are at the same depth and are doubly linked in key order. *)

open Repdir_key
open Gapmap_intf

type entry = {
  key : Key.t;
  mutable version : Version.t;
  mutable value : value;
  mutable gap_after : Version.t;
}

type node = Leaf of leaf | Inner of inner

and leaf = {
  mutable entries : entry array;
  mutable next : leaf option;
  mutable prev : leaf option;
}

and inner = { mutable keys : Key.t array; mutable kids : node array }

type t = {
  mutable root : node;
  mutable low_gap : Version.t;
  mutable size : int;
  branching : int;
}

let default_branching = 32

let create_with ~branching () =
  if branching < 4 then invalid_arg "Btree.create_with: branching must be >= 4";
  {
    root = Leaf { entries = [||]; next = None; prev = None };
    low_gap = Version.lowest;
    size = 0;
    branching;
  }

let create () = create_with ~branching:default_branching ()
let size t = t.size
let branching t = t.branching

(* --- array helpers ------------------------------------------------------ *)

let array_insert arr i x =
  let n = Array.length arr in
  let out = Array.make (n + 1) x in
  Array.blit arr 0 out 0 i;
  Array.blit arr i out (i + 1) (n - i);
  out

let array_remove arr i =
  let n = Array.length arr in
  let out = Array.sub arr 0 (n - 1) in
  Array.blit arr (i + 1) out i (n - 1 - i);
  out

(* First index whose entry key is >= k, and whether k itself is present. *)
let leaf_search entries k =
  let n = Array.length entries in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Key.compare entries.(mid).key k < 0 then go (mid + 1) hi else go lo mid
  in
  let i = go 0 n in
  (i, i < n && Key.equal entries.(i).key k)

(* Index of the child an arbitrary key k belongs to: first separator > k goes
   left of it; equality with a separator routes right. *)
let child_index keys k =
  let n = Array.length keys in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Key.compare keys.(mid) k <= 0 then go (mid + 1) hi else go lo mid
  in
  go 0 n

(* --- descent ------------------------------------------------------------ *)

let rec leaf_for node k =
  match node with
  | Leaf l -> l
  | Inner n -> leaf_for n.kids.(child_index n.keys k) k

let rec leftmost_leaf = function
  | Leaf l -> l
  | Inner n -> leftmost_leaf n.kids.(0)

let rec rightmost_leaf = function
  | Leaf l -> l
  | Inner n -> rightmost_leaf n.kids.(Array.length n.kids - 1)

(* Largest entry strictly below bound [b], if any. *)
let pred_entry t b =
  match b with
  | Bound.Low -> None
  | Bound.High ->
      let l = rightmost_leaf t.root in
      let n = Array.length l.entries in
      if n = 0 then None else Some l.entries.(n - 1)
  | Bound.Key k ->
      let l = leaf_for t.root k in
      let i, _found = leaf_search l.entries k in
      if i > 0 then Some l.entries.(i - 1)
      else (
        match l.prev with
        | None -> None
        | Some p ->
            (* Leaves other than a root leaf are never empty. *)
            Some p.entries.(Array.length p.entries - 1))

(* Largest entry at or below bound [b]. *)
let pred_entry_inclusive t b =
  match b with
  | Bound.Low -> None
  | Bound.High -> pred_entry t Bound.High
  | Bound.Key k -> (
      let l = leaf_for t.root k in
      let i, found = leaf_search l.entries k in
      if found then Some l.entries.(i)
      else if i > 0 then Some l.entries.(i - 1)
      else match l.prev with None -> None | Some p -> Some p.entries.(Array.length p.entries - 1))

(* Smallest entry strictly above bound [b], if any. *)
let succ_entry t b =
  match b with
  | Bound.High -> None
  | Bound.Low ->
      let l = leftmost_leaf t.root in
      if Array.length l.entries = 0 then None else Some l.entries.(0)
  | Bound.Key k -> (
      let l = leaf_for t.root k in
      let i, found = leaf_search l.entries k in
      let j = if found then i + 1 else i in
      if j < Array.length l.entries then Some l.entries.(j)
      else
        match l.next with
        | None -> None
        | Some nx -> Some nx.entries.(0))

(* Version of the gap immediately following bound [b] when [b] is an entry or
   sentinel, or the gap containing [b] otherwise: the gap after the largest
   entry at or below [b]. *)
let gap_at_or_after t b =
  match pred_entry_inclusive t b with None -> t.low_gap | Some e -> e.gap_after

let mem t k =
  let l = leaf_for t.root k in
  snd (leaf_search l.entries k)

(* --- queries ------------------------------------------------------------ *)

let lookup t bound =
  match bound with
  | Bound.Low | Bound.High -> Present { version = Version.lowest; value = "" }
  | Bound.Key k ->
      let l = leaf_for t.root k in
      let i, found = leaf_search l.entries k in
      if found then Present { version = l.entries.(i).version; value = l.entries.(i).value }
      else Absent { gap_version = gap_at_or_after t bound }

let predecessor t bound =
  if Bound.equal bound Bound.Low then invalid_arg "Gapmap.predecessor: LOW";
  match pred_entry t bound with
  | Some e ->
      { key = Bound.Key e.key; entry_version = Some e.version; gap_version = e.gap_after }
  | None -> { key = Bound.Low; entry_version = None; gap_version = t.low_gap }

let successor t bound =
  if Bound.equal bound Bound.High then invalid_arg "Gapmap.successor: HIGH";
  let gap_version = gap_at_or_after t bound in
  match succ_entry t bound with
  | Some e -> { key = Bound.Key e.key; entry_version = Some e.version; gap_version }
  | None -> { key = Bound.High; entry_version = None; gap_version }

(* --- insertion ----------------------------------------------------------- *)

(* Result of inserting below a node: [Some (sep, right)] when the node split,
   with [sep] the smallest key reachable in [right]. *)
let rec insert_node t node k version value =
  match node with
  | Leaf l ->
      let i, found = leaf_search l.entries k in
      if found then begin
        l.entries.(i).version <- version;
        l.entries.(i).value <- value;
        None
      end
      else begin
        (* Splitting the gap: the new entry's gap_after is the version of the
           gap it lands in, i.e. the gap after its predecessor. *)
        let gap_after =
          if i > 0 then l.entries.(i - 1).gap_after
          else
            match l.prev with
            | Some p -> p.entries.(Array.length p.entries - 1).gap_after
            | None -> t.low_gap
        in
        l.entries <- array_insert l.entries i { key = k; version; value; gap_after };
        t.size <- t.size + 1;
        if Array.length l.entries <= t.branching then None
        else begin
          let n = Array.length l.entries in
          let mid = n / 2 in
          let right : leaf =
            { entries = Array.sub l.entries mid (n - mid); next = l.next; prev = Some l }
          in
          l.entries <- Array.sub l.entries 0 mid;
          (match right.next with Some nx -> nx.prev <- Some right | None -> ());
          l.next <- Some right;
          Some (right.entries.(0).key, Leaf right)
        end
      end
  | Inner n -> (
      let i = child_index n.keys k in
      match insert_node t n.kids.(i) k version value with
      | None -> None
      | Some (sep, right) ->
          n.keys <- array_insert n.keys i sep;
          n.kids <- array_insert n.kids (i + 1) right;
          if Array.length n.kids <= t.branching then None
          else begin
            let m = Array.length n.kids in
            let mid = m / 2 in
            (* Left keeps kids [0..mid-1]; separator keys.(mid-1) moves up;
               right takes kids [mid..]. *)
            let up = n.keys.(mid - 1) in
            let right_inner =
              {
                keys = Array.sub n.keys mid (Array.length n.keys - mid);
                kids = Array.sub n.kids mid (m - mid);
              }
            in
            n.keys <- Array.sub n.keys 0 (mid - 1);
            n.kids <- Array.sub n.kids 0 mid;
            Some (up, Inner right_inner)
          end)

let insert t k version value =
  match insert_node t t.root k version value with
  | None -> ()
  | Some (sep, right) -> t.root <- Inner { keys = [| sep |]; kids = [| t.root; right |] }

(* --- deletion ------------------------------------------------------------ *)

let node_weight = function
  | Leaf l -> Array.length l.entries
  | Inner n -> Array.length n.kids

(* Restore occupancy of [n.kids.(i)] after a deletion below it, by borrowing
   from or merging with an adjacent sibling. *)
let fix_child t n i =
  let min_weight = t.branching / 2 in
  let cur = n.kids.(i) in
  if node_weight cur >= min_weight then ()
  else begin
    let left = if i > 0 then Some n.kids.(i - 1) else None in
    let right = if i + 1 < Array.length n.kids then Some n.kids.(i + 1) else None in
    match (cur, left, right) with
    | Leaf c, Some (Leaf lft), _ when Array.length lft.entries > min_weight ->
        (* Borrow the left sibling's last entry. *)
        let n_l = Array.length lft.entries in
        let moved = lft.entries.(n_l - 1) in
        lft.entries <- Array.sub lft.entries 0 (n_l - 1);
        c.entries <- array_insert c.entries 0 moved;
        n.keys.(i - 1) <- moved.key
    | Leaf c, _, Some (Leaf rgt) when Array.length rgt.entries > min_weight ->
        (* Borrow the right sibling's first entry. *)
        let moved = rgt.entries.(0) in
        rgt.entries <- array_remove rgt.entries 0;
        c.entries <- array_insert c.entries (Array.length c.entries) moved;
        n.keys.(i) <- rgt.entries.(0).key
    | Leaf c, Some (Leaf lft), _ ->
        (* Merge into the left sibling. *)
        lft.entries <- Array.append lft.entries c.entries;
        lft.next <- c.next;
        (match c.next with Some nx -> nx.prev <- Some lft | None -> ());
        n.keys <- array_remove n.keys (i - 1);
        n.kids <- array_remove n.kids i
    | Leaf c, None, Some (Leaf rgt) ->
        (* Merge the right sibling into this leaf. *)
        c.entries <- Array.append c.entries rgt.entries;
        c.next <- rgt.next;
        (match rgt.next with Some nx -> nx.prev <- Some c | None -> ());
        n.keys <- array_remove n.keys i;
        n.kids <- array_remove n.kids (i + 1)
    | Inner c, Some (Inner lft), _ when Array.length lft.kids > min_weight ->
        (* Rotate through the parent separator. *)
        let n_l = Array.length lft.kids in
        let moved_kid = lft.kids.(n_l - 1) in
        let moved_key = lft.keys.(n_l - 2) in
        lft.kids <- Array.sub lft.kids 0 (n_l - 1);
        lft.keys <- Array.sub lft.keys 0 (n_l - 2);
        c.kids <- array_insert c.kids 0 moved_kid;
        c.keys <- array_insert c.keys 0 n.keys.(i - 1);
        n.keys.(i - 1) <- moved_key
    | Inner c, _, Some (Inner rgt) when Array.length rgt.kids > min_weight ->
        let moved_kid = rgt.kids.(0) in
        let moved_key = rgt.keys.(0) in
        rgt.kids <- array_remove rgt.kids 0;
        rgt.keys <- array_remove rgt.keys 0;
        c.kids <- array_insert c.kids (Array.length c.kids) moved_kid;
        c.keys <- array_insert c.keys (Array.length c.keys) n.keys.(i);
        n.keys.(i) <- moved_key
    | Inner c, Some (Inner lft), _ ->
        lft.keys <- Array.append lft.keys (array_insert c.keys 0 n.keys.(i - 1));
        lft.kids <- Array.append lft.kids c.kids;
        n.keys <- array_remove n.keys (i - 1);
        n.kids <- array_remove n.kids i
    | Inner c, None, Some (Inner rgt) ->
        c.keys <- Array.append (array_insert c.keys (Array.length c.keys) n.keys.(i)) rgt.keys;
        c.kids <- Array.append c.kids rgt.kids;
        n.keys <- array_remove n.keys i;
        n.kids <- array_remove n.kids (i + 1)
    | _, None, None ->
        (* Only possible at the root, which fix_child is never called on. *)
        assert false
    | Leaf _, Some (Inner _), _ | Leaf _, _, Some (Inner _)
    | Inner _, Some (Leaf _), _ | Inner _, _, Some (Leaf _) ->
        (* Siblings are always at the same level. *)
        assert false
  end

let rec remove_node t node k =
  match node with
  | Leaf l ->
      let i, found = leaf_search l.entries k in
      if found then begin
        l.entries <- array_remove l.entries i;
        t.size <- t.size - 1;
        true
      end
      else false
  | Inner n ->
      let i = child_index n.keys k in
      let removed = remove_node t n.kids.(i) k in
      if removed then fix_child t n i;
      removed

let remove t k =
  let removed = remove_node t t.root k in
  (match t.root with
  | Inner n when Array.length n.kids = 1 -> t.root <- n.kids.(0)
  | Inner _ | Leaf _ -> ());
  removed

(* --- range operations ---------------------------------------------------- *)

(* Keys of entries strictly between two bounds, in ascending order. *)
let keys_strictly_between t ~lo ~hi =
  let acc = ref [] in
  let start =
    match lo with
    | Bound.Low -> Some (leftmost_leaf t.root, 0)
    | Bound.High -> None
    | Bound.Key k ->
        let l = leaf_for t.root k in
        let i, found = leaf_search l.entries k in
        Some (l, if found then i + 1 else i)
  in
  let rec walk l i =
    if i >= Array.length l.entries then
      match l.next with None -> () | Some nx -> walk nx 0
    else
      let e = l.entries.(i) in
      if Bound.compare (Bound.Key e.key) hi < 0 then begin
        acc := e.key :: !acc;
        walk l (i + 1)
      end
  in
  (match start with None -> () | Some (l, i) -> walk l i);
  List.rev !acc

let count_strictly_between t ~lo ~hi = List.length (keys_strictly_between t ~lo ~hi)

let entries_between t ~lo ~hi =
  let acc = ref [] in
  let start =
    match lo with
    | Bound.Low -> Some (leftmost_leaf t.root, 0)
    | Bound.High -> None
    | Bound.Key k ->
        let l = leaf_for t.root k in
        let i, found = leaf_search l.entries k in
        Some (l, if found then i + 1 else i)
  in
  let rec walk l i =
    if i >= Array.length l.entries then
      match l.next with None -> () | Some nx -> walk nx 0
    else
      let e = l.entries.(i) in
      if Bound.compare (Bound.Key e.key) hi < 0 then begin
        acc := (e.key, e.version, e.value, e.gap_after) :: !acc;
        walk l (i + 1)
      end
  in
  (match start with None -> () | Some (l, i) -> walk l i);
  List.rev !acc

let endpoint_exists t = function
  | Bound.Low | Bound.High -> true
  | Bound.Key k -> mem t k

let coalesce t ~lo ~hi version =
  if Bound.compare lo hi >= 0 then invalid_arg "Gapmap.coalesce: lo >= hi";
  if not (endpoint_exists t lo) then raise (Missing_endpoint lo);
  if not (endpoint_exists t hi) then raise (Missing_endpoint hi);
  let doomed = keys_strictly_between t ~lo ~hi in
  List.iter (fun k -> ignore (remove t k)) doomed;
  (match lo with
  | Bound.Low -> t.low_gap <- version
  | Bound.Key k ->
      (match pred_entry_inclusive t (Bound.Key k) with
      | Some e when Key.equal e.key k -> e.gap_after <- version
      | Some _ | None -> assert false)
  | Bound.High -> assert false);
  List.length doomed

let set_gap_after t b version =
  match b with
  | Bound.High -> invalid_arg "Gapmap.set_gap_after: HIGH"
  | Bound.Low -> t.low_gap <- version
  | Bound.Key k -> (
      match pred_entry_inclusive t (Bound.Key k) with
      | Some e when Key.equal e.key k -> e.gap_after <- version
      | Some _ | None -> raise (Missing_endpoint b))

(* --- iteration ----------------------------------------------------------- *)

let fold_entries t ~init ~f =
  let rec walk acc l i =
    if i >= Array.length l.entries then
      match l.next with None -> acc | Some nx -> walk acc nx 0
    else walk (f acc l.entries.(i)) l (i + 1)
  in
  walk init (leftmost_leaf t.root) 0

let entries t =
  List.rev (fold_entries t ~init:[] ~f:(fun acc e -> (e.key, e.version, e.value) :: acc))

let gaps t =
  let items =
    List.rev (fold_entries t ~init:[] ~f:(fun acc e -> (e.key, e.gap_after) :: acc))
  in
  let rec go left gap_version = function
    | [] -> [ (left, Bound.High, gap_version) ]
    | (k, gap_after) :: rest ->
        (left, Bound.Key k, gap_version) :: go (Bound.Key k) gap_after rest
  in
  go Bound.Low t.low_gap items

(* --- validation ---------------------------------------------------------- *)

let check_invariants t =
  let exception Bad of string in
  let fail fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt in
  let min_weight = t.branching / 2 in
  (* Returns (depth, first_key, last_key) for non-empty subtrees. *)
  let rec check node ~is_root =
    match node with
    | Leaf l ->
        let n = Array.length l.entries in
        if (not is_root) && n < min_weight then fail "leaf underfull (%d < %d)" n min_weight;
        if n > t.branching then fail "leaf overfull (%d)" n;
        for i = 0 to n - 2 do
          if Key.compare l.entries.(i).key l.entries.(i + 1).key >= 0 then
            fail "leaf out of order at %a" Key.pp l.entries.(i).key
        done;
        if n = 0 then (1, None, None)
        else (1, Some l.entries.(0).key, Some l.entries.(n - 1).key)
    | Inner node ->
        let kids = Array.length node.kids in
        if Array.length node.keys <> kids - 1 then fail "separator count mismatch";
        if (not is_root) && kids < min_weight then fail "inner underfull";
        if is_root && kids < 2 then fail "root inner with < 2 children";
        if kids > t.branching then fail "inner overfull";
        let results = Array.map (fun kid -> check kid ~is_root:false) node.kids in
        Array.iteri
          (fun i (_, first, last) ->
            (* Separator correctness: kid i's keys < keys.(i) <= kid (i+1)'s. *)
            (match first with
            | Some f when i > 0 && Key.compare f node.keys.(i - 1) < 0 ->
                fail "separator violated: %a < %a" Key.pp f Key.pp node.keys.(i - 1)
            | Some _ | None -> ());
            match last with
            | Some l when i < Array.length node.keys && Key.compare l node.keys.(i) >= 0 ->
                fail "separator violated: %a >= %a" Key.pp l Key.pp node.keys.(i)
            | Some _ | None -> ())
          results;
        let depth0, _, _ = results.(0) in
        Array.iter
          (fun (d, _, _) -> if d <> depth0 then fail "leaves at different depths")
          results;
        let _, first, _ = results.(0) in
        let _, _, last = results.(kids - 1) in
        (1 + depth0, first, last)
  in
  try
    let _ = check t.root ~is_root:true in
    (* Leaf chain covers exactly the entries, in order, with sane links. *)
    let count = fold_entries t ~init:0 ~f:(fun acc _ -> acc + 1) in
    if count <> t.size then Error (Printf.sprintf "size mismatch: chain %d vs %d" count t.size)
    else Ok ()
  with Bad msg -> Error msg

let pp ppf t =
  Format.fprintf ppf "LOW -%a-" Version.pp t.low_gap;
  fold_entries t ~init:() ~f:(fun () e ->
      Format.fprintf ppf " %a:%a -%a-" Key.pp e.key Version.pp e.version Version.pp e.gap_after);
  Format.fprintf ppf " HIGH"

include Gapmap_intf.Sync_ops (struct
  type nonrec t = t

  let create = create
  let size = size
  let mem = mem
  let lookup = lookup
  let predecessor = predecessor
  let successor = successor
  let insert = insert
  let coalesce = coalesce
  let remove = remove
  let set_gap_after = set_gap_after
  let entries = entries
  let gaps = gaps
  let count_strictly_between = count_strictly_between
  let entries_between = entries_between
  let check_invariants = check_invariants
  let pp = pp
end)
