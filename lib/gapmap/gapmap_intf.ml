(** Interface shared by the gap-versioned map implementations.

    A gap map is the state of one directory representative: an ordered set of
    entries [(key, version, value)] bracketed by the LOW and HIGH sentinels,
    with every *gap* between adjacent entries (or between a sentinel and its
    neighbouring entry) carrying its own version number. The dynamic
    partition of §2 of the paper is exactly: each entry is a one-key range
    with its own version; each gap is a range with its own version.

    Two implementations satisfy {!S}: {!module:Reference} (sorted list;
    obviously correct, used as the model in property tests) and
    {!module:Btree} (imperative B+tree with gap versions stored in bounding
    entries, as §5 of the paper envisions).

    Beyond the paper's Figure 6 operations, {!S} includes the anti-entropy
    surface: range digests (a checksum fold of the map's state over a key
    range, so two representatives can cheaply compare ranges), range
    transfers, and a version-monotone merge that applies a peer's newer
    entries and gap versions without ever lowering — or fabricating — a
    version number. The merge logic is shared by both implementations via
    {!Sync_ops}, so it is written (and property-tested) once. *)

open Repdir_key

type value = string

(** Result of looking up a single key. *)
type lookup =
  | Present of { version : Version.t; value : value }
  | Absent of { gap_version : Version.t }
      (** The version of the gap in which the key falls. *)

(** Result of a predecessor/successor query: the neighbouring entry (possibly
    a sentinel) and the version of the gap separating it from the queried
    key. [entry_version] is [None] exactly when [key] is a sentinel. *)
type neighbor = {
  key : Bound.t;
  entry_version : Version.t option;
  gap_version : Version.t;
}

(** Raised by [coalesce] when one of the range endpoints is not an existing
    entry (or sentinel), mirroring the error the paper specifies for
    [DirRepCoalesce]. *)
exception Missing_endpoint of Bound.t

(* --- anti-entropy types -------------------------------------------------- *)

(** Summary of a map's state over a half-open range [(lo, hi]]: an FNV-1a
    fold of every entry (key, version, value, following-gap version) strictly
    inside, the version of the gap just above [lo], and the state at [hi]
    itself. Two maps have equal digests for a range iff they agree pointwise
    on it (up to hash collision). *)
type digest = { hash : int64; n_entries : int }

(** The state of the range endpoint [hi] as seen by the sending map. *)
type hi_state =
  | Hi_sentinel  (** [hi] is HIGH (or by convention LOW): nothing to say *)
  | Hi_entry of Version.t * value  (** [hi] is a stored entry *)
  | Hi_absent of Version.t  (** [hi] falls in a gap with this version *)

(** A versioned range transfer: everything a peer knows about [(t_lo, t_hi]].
    [t_items] are the entries strictly inside, ascending, each with the
    version of the gap that follows it (the last one's gap runs up to
    [t_hi]); [t_low_gap] is the version of the gap just above [t_lo]. *)
type transfer = {
  t_lo : Bound.t;
  t_hi : Bound.t;
  t_low_gap : Version.t;
  t_items : (Key.t * Version.t * value * Version.t) list;
  t_hi_state : hi_state;
}

(** Primitive steps of a merge, in application order. Keeping the plan
    explicit lets the representative undo-log each step's inverse and write
    the whole plan to its WAL as one redo record. *)
type sync_op =
  | Sync_put of Key.t * Version.t * value
      (** Install or overwrite an entry the peer holds at a higher version. *)
  | Sync_del of Key.t
      (** Remove an entry dominated by a peer gap; only planned when both
          adjacent gap versions already equal the dominating version, so the
          merged gap is exact. *)
  | Sync_gap of Bound.t * Version.t
      (** Raise the version of the gap following the bound. *)

type sync_plan = {
  ops : sync_op list;
  ghosts_kept : int;
      (** Entries a peer gap dominates that could not be removed exactly
          (their surrounding gap versions disagree with the dominating
          version); they stay behind as harmless ghosts and are retried on a
          later round. *)
}

(** What a merge actually did, for the sync-traffic counters. *)
type applied = {
  installed : int;  (** fresh entries created *)
  updated : int;  (** entries overwritten in place *)
  deleted : int;  (** dominated entries removed *)
  gaps_raised : int;  (** gap versions raised *)
  ghosts_kept : int;
}

let empty_applied =
  { installed = 0; updated = 0; deleted = 0; gaps_raised = 0; ghosts_kept = 0 }

let pp_digest ppf d = Format.fprintf ppf "%016Lx/%d" d.hash d.n_entries

let pp_sync_op ppf = function
  | Sync_put (k, v, _) -> Format.fprintf ppf "put %a:%a" Key.pp k Version.pp v
  | Sync_del k -> Format.fprintf ppf "del %a" Key.pp k
  | Sync_gap (b, v) -> Format.fprintf ppf "gap %a->%a" Bound.pp b Version.pp v

(** The paper-facing map operations (Figure 6 plus recovery helpers). *)
module type BASE = sig
  type t

  val create : unit -> t
  (** An empty directory: only LOW and HIGH, one gap at version
      {!Version.lowest} between them. *)

  val size : t -> int
  (** Number of real (non-sentinel) entries. *)

  val mem : t -> Key.t -> bool

  val lookup : t -> Bound.t -> lookup
  (** Sentinels are always present with version {!Version.lowest}. *)

  val predecessor : t -> Bound.t -> neighbor
  (** Largest entry strictly below the argument, together with the version of
      the gap between them (the gap following that entry). Raises
      [Invalid_argument] on [Low]. *)

  val successor : t -> Bound.t -> neighbor
  (** Smallest entry strictly above the argument, together with the version
      of the gap between the argument and that entry (the gap preceding it).
      Raises [Invalid_argument] on [High]. *)

  val insert : t -> Key.t -> Version.t -> value -> unit
  (** Create or overwrite the entry for the key. A fresh entry splits the gap
      containing the key; both halves keep the old gap's version (Fig. 4 of
      the paper). *)

  val coalesce : t -> lo:Bound.t -> hi:Bound.t -> Version.t -> int
  (** Delete every entry strictly between [lo] and [hi] and give the
      resulting single gap the supplied version. Returns the number of
      entries deleted. Raises {!Missing_endpoint} if [lo] or [hi] is neither
      a stored entry nor a sentinel, and [Invalid_argument] if [lo >= hi]. *)

  val remove : t -> Key.t -> bool
  (** Low-level removal of a single entry, used by transaction undo. The two
      gaps adjoining the entry merge into one that keeps the *predecessor's*
      gap version (which equals the removed entry's former gap when undoing
      an insert, since insert gave both halves the same version). Returns
      false if the key was absent. Directory deletion must go through
      {!coalesce}; this operation exists for the recovery layer. *)

  val set_gap_after : t -> Bound.t -> Version.t -> unit
  (** [set_gap_after t b v] sets the version of the gap immediately following
      [b], where [b] must be [Low] or an existing entry. Used by transaction
      undo and write-ahead-log replay. Raises {!Missing_endpoint} otherwise
      and [Invalid_argument] on [High]. *)

  val entries : t -> (Key.t * Version.t * value) list
  (** All real entries in ascending key order. *)

  val gaps : t -> (Bound.t * Bound.t * Version.t) list
  (** All gaps, ascending: [(left bound, right bound, gap version)]. There
      are always [size t + 1] gaps. *)

  val count_strictly_between : t -> lo:Bound.t -> hi:Bound.t -> int
  (** Number of entries [e] with [lo < e < hi]; the paper's "entries in
      ranges coalesced" statistic counts these. *)

  val entries_between : t -> lo:Bound.t -> hi:Bound.t -> (Key.t * Version.t * value * Version.t) list
  (** Entries strictly between the bounds, ascending, each with the version
      of the gap that follows it. Used by transaction undo (a coalesce must
      be able to restore exactly what it destroyed). *)

  val check_invariants : t -> (unit, string) result
  (** Structural validation: entry order, gap count, implementation-specific
      shape (B+tree balance, occupancy). *)

  val pp : Format.formatter -> t -> unit
  (** Rendering in the style of the paper's figures:
      [LOW -0- a:1 -0- c:1 -0- HIGH] (gap versions between dashes). *)
end

(** Anti-entropy operations, derived once from {!BASE} so the reference and
    B+tree implementations share the (subtle) merge logic byte for byte. *)
module Sync_ops (M : BASE) = struct
  module C = Repdir_util.Checksum

  let check_range ~what lo hi =
    if Bound.compare lo hi >= 0 then
      invalid_arg (Printf.sprintf "Gapmap.%s: lo >= hi" what)

  (* Version of the gap immediately above [lo]: the gap separating [lo] from
     its successor entry. *)
  let gap_above m lo = (M.successor m lo).gap_version

  let hi_state_of m hi =
    match hi with
    | Bound.Low | Bound.High -> Hi_sentinel
    | Bound.Key _ -> (
        match M.lookup m hi with
        | Present { version; value } -> Hi_entry (version, value)
        | Absent { gap_version } -> Hi_absent gap_version)

  let digest_range m ~lo ~hi =
    check_range ~what:"digest_range" lo hi;
    let h = ref (C.int C.init (Version.to_int (gap_above m lo))) in
    let n = ref 0 in
    let fold_entry k v value g =
      incr n;
      let ks = Key.to_string k in
      h := C.int !h (String.length ks);
      h := C.string !h ks;
      h := C.int !h (Version.to_int v);
      h := C.int !h (String.length value);
      h := C.string !h value;
      h := C.int !h (Version.to_int g)
    in
    List.iter (fun (k, v, value, g) -> fold_entry k v value g) (M.entries_between m ~lo ~hi);
    (match hi_state_of m hi with
    | Hi_sentinel -> h := C.int !h 0
    | Hi_entry (v, value) ->
        incr n;
        h := C.int !h 1;
        h := C.int !h (Version.to_int v);
        h := C.int !h (String.length value);
        h := C.string !h value
    | Hi_absent g ->
        h := C.int !h 2;
        h := C.int !h (Version.to_int g));
    { hash = !h; n_entries = !n }

  (* Like {!digest_range} but without the version of the gap immediately
     above [lo]. That gap can physically extend below [lo] (nothing pins an
     entry at an arbitrary range boundary), so its version is shared with —
     and bumped by — deletions outside [(lo, hi]]. A convergence gate over a
     frozen slice must not depend on it: the slice's entries and its interior
     absence proofs are frozen, the boundary gap's version is not. *)
  let digest_interior_range m ~lo ~hi =
    check_range ~what:"digest_interior_range" lo hi;
    let h = ref C.init in
    let n = ref 0 in
    let fold_entry k v value g =
      incr n;
      let ks = Key.to_string k in
      h := C.int !h (String.length ks);
      h := C.string !h ks;
      h := C.int !h (Version.to_int v);
      h := C.int !h (String.length value);
      h := C.string !h value;
      h := C.int !h (Version.to_int g)
    in
    List.iter (fun (k, v, value, g) -> fold_entry k v value g) (M.entries_between m ~lo ~hi);
    (match hi_state_of m hi with
    | Hi_sentinel -> h := C.int !h 0
    | Hi_entry (v, value) ->
        incr n;
        h := C.int !h 1;
        h := C.int !h (Version.to_int v);
        h := C.int !h (String.length value);
        h := C.string !h value
    | Hi_absent g ->
        h := C.int !h 2;
        h := C.int !h (Version.to_int g));
    { hash = !h; n_entries = !n }

  let split_range m ~lo ~hi ~arity =
    check_range ~what:"split_range" lo hi;
    if arity < 2 then invalid_arg "Gapmap.split_range: arity must be >= 2";
    let keys =
      Array.of_list (List.map (fun (k, _, _, _) -> k) (M.entries_between m ~lo ~hi))
    in
    let n = Array.length keys in
    if n < 2 then []
    else begin
      let picks = ref [] in
      for i = arity - 1 downto 1 do
        let idx = i * n / arity in
        if idx > 0 && idx < n then
          match !picks with
          | Bound.Key k :: _ when Key.equal k keys.(idx) -> ()
          | _ -> picks := Bound.Key keys.(idx) :: !picks
      done;
      !picks
    end

  let pull_range m ~lo ~hi =
    check_range ~what:"pull_range" lo hi;
    {
      t_lo = lo;
      t_hi = hi;
      t_low_gap = gap_above m lo;
      t_items = M.entries_between m ~lo ~hi;
      t_hi_state = hi_state_of m hi;
    }

  (* The merge planner. Pointwise rule: for every point x in (lo, hi], if the
     peer's version at x exceeds ours, adopt the peer's state at x; never
     lower a version, and never raise one beyond what the peer attests.
     Three passes over a read-only snapshot:

     1. puts — peer entries (and the hi-boundary entry) whose version beats
        our version at that key, whether we hold an older entry or a gap;
     2. gap raises — for every gap fragment (delimited by our entries plus
        the entries pass 1 will install) lying wholly inside the range, raise
        to the *minimum* peer version over the fragment if that beats ours.
        The minimum counts rejected (stale) peer entries too, which caps it
        at our own version there — so a fragment never rises above what the
        peer actually attests at every point;
     3. deletes — our entries covered by a strictly newer peer gap, removed
        only when both adjacent fragment versions (after pass 2) equal the
        dominating version, so the post-removal merged gap is exact. The
        rest stay as ghosts and are retried next round.

     The plan is a pure function of (map, transfer); applying [ops] in order
     with {!apply_sync_op} realizes it. *)
  let plan_transfer m (tr : transfer) : sync_plan =
    check_range ~what:"plan_transfer" tr.t_lo tr.t_hi;
    let lo = tr.t_lo and hi = tr.t_hi in
    let local_version_at k =
      match M.lookup m (Bound.Key k) with
      | Present { version; _ } -> version
      | Absent { gap_version } -> gap_version
    in
    (* Pass 1: puts. *)
    let puts =
      List.filter_map
        (fun (k, v, value, _) ->
          if Version.compare v (local_version_at k) > 0 then Some (k, v, value) else None)
        tr.t_items
    in
    let hi_put =
      match (hi, tr.t_hi_state) with
      | Bound.Key k, Hi_entry (v, value) when Version.compare v (local_version_at k) > 0 ->
          Some (k, v, value)
      | _ -> None
    in
    let installed_fresh =
      List.filter
        (fun (k, _, _) ->
          match M.lookup m (Bound.Key k) with Present _ -> false | Absent _ -> true)
        (puts @ Option.to_list hi_put)
      |> List.map (fun (k, _, _) -> k)
    in
    (* Peer pieces over (lo, hi): alternating gaps and entries. A peer gap
       piece (p, q, v) attests every point of (p, q) absent at version v. *)
    let peer_gaps =
      let rec go left gv = function
        | [] -> [ (left, hi, gv) ]
        | (k, _, _, g) :: rest -> (left, Bound.Key k, gv) :: go (Bound.Key k) g rest
      in
      go lo tr.t_low_gap tr.t_items
    in
    let peer_entries = List.map (fun (k, v, _, _) -> (k, v)) tr.t_items in
    (* Effective boundaries: our entries inside the range plus freshly
       installed peer keys; fragments are the open intervals between
       consecutive boundaries (range ends included). *)
    let local_inside = M.entries_between m ~lo ~hi in
    let boundaries =
      List.sort_uniq Key.compare
        (List.map (fun (k, _, _, _) -> k) local_inside @ installed_fresh)
    in
    let cuts = (lo :: List.map (fun k -> Bound.Key k) boundaries) @ [ hi ] in
    let rec fragments = function
      | a :: (b :: _ as rest) -> (a, b) :: fragments rest
      | _ -> []
    in
    let is_local_entry = function
      | Bound.Low | Bound.High -> true
      | Bound.Key k -> M.mem m k
    in
    let installed b =
      match b with
      | Bound.Low | Bound.High -> false
      | Bound.Key k -> List.exists (Key.equal k) installed_fresh
    in
    let anchored b = is_local_entry b || installed b in
    (* Minimum peer-attested version over the open fragment (a, b): peer gap
       pieces that overlap it, plus rejected peer entries strictly inside. *)
    let peer_min (a, b) =
      let acc = ref None in
      let note v = acc := Some (match !acc with None -> v | Some m -> min m v) in
      List.iter
        (fun (p, q, v) -> if Bound.compare p b < 0 && Bound.compare a q < 0 then note v)
        peer_gaps;
      List.iter
        (fun (k, v) ->
          let bk = Bound.Key k in
          if Bound.compare a bk < 0 && Bound.compare bk b < 0 then note v)
        peer_entries;
      !acc
    in
    (* Pass 2: gap raises. [frag_version] records each fragment's version
       after the pass, for the delete pass to consult. *)
    let frag_versions = Hashtbl.create 16 in
    let raises = ref [] in
    List.iter
      (fun (a, b) ->
        let v_loc = (M.successor m a).gap_version in
        let v' =
          if not (anchored a && anchored b) then v_loc
          else
            match peer_min (a, b) with
            | Some pv when Version.compare pv v_loc > 0 ->
                raises := Sync_gap (a, pv) :: !raises;
                pv
            | Some _ | None -> v_loc
        in
        Hashtbl.replace frag_versions a (v', b))
      (fragments cuts);
    let raises = List.rev !raises in
    (* Pass 3: deletes of dominated local entries. *)
    let peer_has k = List.exists (fun (k', _) -> Key.equal k k') peer_entries in
    let dominating_gap k =
      let bk = Bound.Key k in
      List.find_map
        (fun (p, q, v) ->
          if Bound.compare p bk < 0 && Bound.compare bk q < 0 then Some v else None)
        peer_gaps
    in
    let prev_cut k =
      (* Largest cut strictly below k; cuts are ascending. *)
      let bk = Bound.Key k in
      List.fold_left (fun acc c -> if Bound.compare c bk < 0 then c else acc) lo cuts
    in
    let deletes = ref [] and ghosts = ref 0 in
    List.iter
      (fun (k, v, _, _) ->
        if not (peer_has k) then
          match dominating_gap k with
          | Some gv when Version.compare gv v > 0 -> (
              let left = prev_cut k in
              match (Hashtbl.find_opt frag_versions left, Hashtbl.find_opt frag_versions (Bound.Key k)) with
              | Some (lv, _), Some (rv, _) when Version.equal lv gv && Version.equal rv gv ->
                  deletes := Sync_del k :: !deletes
              | _ -> incr ghosts)
          | Some _ | None -> ())
      local_inside;
    let put_ops = List.map (fun (k, v, value) -> Sync_put (k, v, value)) (puts @ Option.to_list hi_put) in
    { ops = put_ops @ raises @ List.rev !deletes; ghosts_kept = !ghosts }

  let apply_sync_op m = function
    | Sync_put (k, v, value) -> M.insert m k v value
    | Sync_del k -> ignore (M.remove m k)
    | Sync_gap (b, v) -> M.set_gap_after m b v

  let apply_transfer m tr =
    let plan = plan_transfer m tr in
    let acc = ref { empty_applied with ghosts_kept = plan.ghosts_kept } in
    List.iter
      (fun op ->
        (match op with
        | Sync_put (k, _, _) -> (
            match M.lookup m (Bound.Key k) with
            | Present _ -> acc := { !acc with updated = !acc.updated + 1 }
            | Absent _ -> acc := { !acc with installed = !acc.installed + 1 })
        | Sync_del _ -> acc := { !acc with deleted = !acc.deleted + 1 }
        | Sync_gap _ -> acc := { !acc with gaps_raised = !acc.gaps_raised + 1 });
        apply_sync_op m op)
      plan.ops;
    !acc
end

module type SYNC = sig
  type t

  val digest_range : t -> lo:Bound.t -> hi:Bound.t -> digest
  (** Digest of the map's state over [(lo, hi]]; O(entries in the range).
      Raises [Invalid_argument] if [lo >= hi]. *)

  val digest_interior_range : t -> lo:Bound.t -> hi:Bound.t -> digest
  (** Like {!digest_range} but excluding the version of the gap immediately
      above [lo], which can be shared with (and concurrently bumped by)
      deletions below [lo]. Used by convergence gates over frozen slices
      whose low boundary falls inside a live gap. *)

  val split_range : t -> lo:Bound.t -> hi:Bound.t -> arity:int -> Bound.t list
  (** Up to [arity - 1] distinct interior entry keys cutting the range into
      roughly entry-equal sub-ranges, ascending; [[]] when the range holds
      fewer than two entries. Raises [Invalid_argument] if [arity < 2]. *)

  val pull_range : t -> lo:Bound.t -> hi:Bound.t -> transfer
  (** Everything this map knows about [(lo, hi]]. *)

  val plan_transfer : t -> transfer -> sync_plan
  (** Read-only: the version-monotone merge of a peer transfer into this
      map, as primitive steps in application order. *)

  val apply_sync_op : t -> sync_op -> unit

  val apply_transfer : t -> transfer -> applied
  (** [plan_transfer] followed by the ops; digests over the transferred
      range converge toward the pointwise-newest of the two maps. *)
end

module type S = sig
  include BASE
  include SYNC with type t := t
end
