let init = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let byte h b = Int64.mul (Int64.logxor h (Int64.of_int b)) prime

let string h s =
  let h = ref h in
  String.iter (fun c -> h := byte !h (Char.code c)) s;
  !h

let int h n =
  let h = ref h in
  for shift = 0 to 7 do
    h := byte !h ((n lsr (shift * 8)) land 0xff)
  done;
  !h

let fnv1a s = string init s
