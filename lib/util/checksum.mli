(** FNV-1a 64-bit hashing.

    One checksum for the whole system: the write-ahead log frames its records
    with it, and the anti-entropy layer folds it over gap-map ranges to build
    digests. FNV-1a is not cryptographic; it is a fast, well-distributed
    64-bit fold, which is what both users need (storage faults and replica
    divergence are accidents, not adversaries). *)

val init : int64
(** The FNV-1a offset basis; start every fold here. *)

val string : int64 -> string -> int64
(** Fold a string's bytes into a running hash. *)

val int : int64 -> int -> int64
(** Fold a native int (as 8 little-endian bytes) into a running hash.
    Folding the value rather than its decimal rendering keeps version-number
    hashing allocation-free. *)

val fnv1a : string -> int64
(** [string init s] — the one-shot form used for log frames. *)
