(** Replicated membership records: epoch-stamped vote reconfiguration.

    The paper fixes the suite of representatives once and for all; this
    module makes the suite itself replicated data. A membership {!record}
    names, for a fixed array of representative {i slots}, the vote
    assignment and quorum thresholds ({!Repdir_quorum.Config.t}) together
    with a per-slot roster status, all stamped with a monotonically
    increasing {i epoch}. The record is stored as a distinguished directory
    entry under {!key} — a key that sorts before every workload key — and is
    changed through the ordinary two-phase-commit write path, so membership
    enjoys exactly the consistency story of any other directory entry.

    Reconfiguration is two-step, in the style of joint consensus:

    {ol
    {- {!begin_change} moves a [Stable] record to a [Joint] record pairing
       the old view with the proposed one (epoch [e+1]). While a [Joint]
       record governs, every operation must collect its quorum in {i both}
       views, so any two quorums across the transition intersect.}
    {- {!finish_change} collapses the [Joint] record to a [Stable] record of
       the new view alone (epoch [e+2]), once the new view's members have
       caught up.}}

    Slots are fixed: a configuration change never renumbers representatives.
    A joining representative occupies a pre-existing zero-vote slot
    ([Joining] in the roster) and is promoted by assigning it votes; a
    retiring representative has its votes drained to zero and its slot
    marked [Retired]. Zero-vote slots never count toward quorums
    (Gifford's weak representatives), so the rest of the machinery needs no
    index remapping.

    Records serialize deterministically ({!encode}/{!decode}): retrying a
    failed installation rewrites byte-identical state. *)

open Repdir_quorum

type status =
  | Active  (** full member; normally holds votes *)
  | Joining  (** holds zero votes while catching up via anti-entropy *)
  | Retired  (** drained to zero votes and fenced *)

type view = { epoch : int; config : Config.t; roster : status array }
(** One configuration: vote assignment, R/W thresholds and roster, stamped
    with its epoch. [roster] has one entry per slot of [config]. *)

type record =
  | Stable of view
  | Joint of view * view
      (** [Joint (old_view, new_view)]: a change in flight. Operations
          collect quorums in both views. [new_view.epoch = old_view.epoch + 1]. *)

val key : Repdir_key.Key.t
(** The distinguished directory key holding the membership record. It sorts
    before every key the workload generators can produce. *)

val epoch_of : record -> int
(** The fencing epoch: the newest view's epoch. *)

val current : record -> view
(** The newest view ([new_view] of a [Joint] record). *)

val views : record -> view list
(** The governing views, oldest first — one for [Stable], two for [Joint].
    Quorums must be collected in every listed view. *)

val targets : record -> read:bool -> (Config.t * int) list
(** The [(config, quorum)] pairs an operation must satisfy, oldest view
    first: read quorums when [read], write quorums otherwise. *)

val make_view :
  epoch:int -> config:Config.t -> roster:status array -> (view, string) result
(** Validates: roster length matches the configuration, and [Joining] /
    [Retired] slots hold zero votes. *)

val initial : config:Config.t -> roster:status array -> record
(** [Stable] record at epoch 0. Raises [Invalid_argument] on an invalid
    view. *)

val begin_change :
  record -> config:Config.t -> roster:status array -> (record, string) result
(** [Stable v] becomes [Joint (v, v')] with [v'] at epoch [v.epoch + 1].
    Fails on a [Joint] record (one change at a time) or when the slot count
    changes. *)

val finish_change : record -> (record, string) result
(** [Joint (_, v')] becomes [Stable] at epoch [v'.epoch + 1]. Fails on a
    [Stable] record. *)

val join :
  record ->
  slot:int ->
  votes:int ->
  read_quorum:int ->
  write_quorum:int ->
  (record, string) result
(** Promote a [Joining] zero-vote slot to [Active] with [votes] votes under
    the given thresholds, as a {!begin_change}. *)

val retire :
  record ->
  slot:int ->
  read_quorum:int ->
  write_quorum:int ->
  (record, string) result
(** Drain a slot's votes to zero and mark it [Retired] under the given
    thresholds, as a {!begin_change}. *)

val encode : record -> string
(** Deterministic serialization: equal records encode to equal strings. *)

val decode : string -> (record, string) result

val decode_exn : string -> record
(** Raises [Invalid_argument] on a malformed encoding. *)

val equal : record -> record -> bool
val pp : Format.formatter -> record -> unit
val pp_view : Format.formatter -> view -> unit
