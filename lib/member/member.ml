open Repdir_quorum

type status = Active | Joining | Retired

type view = { epoch : int; config : Config.t; roster : status array }

type record = Stable of view | Joint of view * view

(* '!' (0x21) sorts before '0' (0x30) and 'a' (0x61), so this key precedes
   every key Key.of_int or Key.random can produce. *)
let key = "!membership"

let epoch_of = function Stable v -> v.epoch | Joint (_, v) -> v.epoch
let current = function Stable v -> v | Joint (_, v) -> v
let views = function Stable v -> [ v ] | Joint (o, n) -> [ o; n ]

let targets t ~read =
  List.map
    (fun v ->
      ( v.config,
        if read then v.config.Config.read_quorum else v.config.Config.write_quorum ))
    (views t)

let make_view ~epoch ~config ~roster =
  if epoch < 0 then Error "negative epoch"
  else if Array.length roster <> Config.n_reps config then
    Error "roster length does not match the configuration"
  else
    let bad = ref None in
    Array.iteri
      (fun i s ->
        match s with
        | Active -> ()
        | Joining | Retired ->
            if Config.votes_of config i <> 0 && !bad = None then bad := Some i)
      roster;
    match !bad with
    | Some i -> Error (Printf.sprintf "slot %d is not Active but holds votes" i)
    | None -> Ok { epoch; config; roster }

let initial ~config ~roster =
  match make_view ~epoch:0 ~config ~roster with
  | Ok v -> Stable v
  | Error e -> invalid_arg ("Member.initial: " ^ e)

let begin_change t ~config ~roster =
  match t with
  | Joint _ -> Error "a configuration change is already in flight"
  | Stable v ->
      if Config.n_reps config <> Config.n_reps v.config then
        Error "slot count cannot change (slots are fixed)"
      else
        Result.map
          (fun v' -> Joint (v, v'))
          (make_view ~epoch:(v.epoch + 1) ~config ~roster)

let finish_change = function
  | Stable _ -> Error "no configuration change in flight"
  | Joint (_, v) -> (
      match make_view ~epoch:(v.epoch + 1) ~config:v.config ~roster:v.roster with
      | Ok v' -> Ok (Stable v')
      | Error e -> Error e)

let change_slot t ~slot ~votes ~status ~read_quorum ~write_quorum =
  match t with
  | Joint _ -> Error "a configuration change is already in flight"
  | Stable v ->
      if slot < 0 || slot >= Config.n_reps v.config then Error "slot out of range"
      else
        let new_votes =
          Array.init (Config.n_reps v.config) (fun i ->
              if i = slot then votes else Config.votes_of v.config i)
        in
        Result.bind (Config.make ~votes:new_votes ~read_quorum ~write_quorum)
          (fun config ->
            let roster = Array.copy v.roster in
            roster.(slot) <- status;
            begin_change t ~config ~roster)

let join t ~slot ~votes ~read_quorum ~write_quorum =
  if votes <= 0 then Error "a joining slot needs positive votes"
  else
    match t with
    | Joint _ -> Error "a configuration change is already in flight"
    | Stable v ->
        if slot < 0 || slot >= Array.length v.roster then Error "slot out of range"
        else if v.roster.(slot) <> Joining then Error "slot is not Joining"
        else change_slot t ~slot ~votes ~status:Active ~read_quorum ~write_quorum

let retire t ~slot ~read_quorum ~write_quorum =
  match t with
  | Joint _ -> Error "a configuration change is already in flight"
  | Stable v ->
      if slot < 0 || slot >= Array.length v.roster then Error "slot out of range"
      else if v.roster.(slot) <> Active then Error "slot is not Active"
      else change_slot t ~slot ~votes:0 ~status:Retired ~read_quorum ~write_quorum

(* --- serialization -------------------------------------------------------------- *)

let status_char = function Active -> 'A' | Joining -> 'J' | Retired -> 'X'

let status_of_char = function
  | 'A' -> Ok Active
  | 'J' -> Ok Joining
  | 'X' -> Ok Retired
  | c -> Error (Printf.sprintf "bad roster status %C" c)

let encode_view v =
  let votes =
    String.concat ","
      (List.init (Config.n_reps v.config) (fun i ->
           string_of_int (Config.votes_of v.config i)))
  in
  let roster = String.init (Array.length v.roster) (fun i -> status_char v.roster.(i)) in
  Printf.sprintf "%d;%s;%d;%d;%s" v.epoch votes v.config.Config.read_quorum
    v.config.Config.write_quorum roster

let decode_view s =
  match String.split_on_char ';' s with
  | [ epoch; votes; r; w; roster ] -> (
      match
        ( int_of_string_opt epoch,
          int_of_string_opt r,
          int_of_string_opt w,
          List.map int_of_string_opt (String.split_on_char ',' votes) )
      with
      | Some epoch, Some r, Some w, vs when List.for_all Option.is_some vs -> (
          let votes = Array.of_list (List.map Option.get vs) in
          match Config.make ~votes ~read_quorum:r ~write_quorum:w with
          | Error e -> Error e
          | Ok config ->
              if String.length roster <> Array.length votes then
                Error "roster length does not match votes"
              else
                let statuses = ref (Ok []) in
                String.iter
                  (fun c ->
                    statuses :=
                      Result.bind !statuses (fun acc ->
                          Result.map (fun s -> s :: acc) (status_of_char c)))
                  roster;
                Result.bind !statuses (fun acc ->
                    make_view ~epoch ~config
                      ~roster:(Array.of_list (List.rev acc))))
      | _ -> Error "malformed view: non-numeric field")
  | _ -> Error "malformed view: wrong field count"

let encode = function
  | Stable v -> "S|" ^ encode_view v
  | Joint (o, n) -> "J|" ^ encode_view o ^ "|" ^ encode_view n

let decode s =
  match String.split_on_char '|' s with
  | [ "S"; v ] -> Result.map (fun v -> Stable v) (decode_view v)
  | [ "J"; o; n ] ->
      Result.bind (decode_view o) (fun o ->
          Result.bind (decode_view n) (fun n ->
              if n.epoch <> o.epoch + 1 then Error "joint views are not consecutive"
              else Ok (Joint (o, n))))
  | _ -> Error "malformed membership record"

let decode_exn s =
  match decode s with
  | Ok r -> r
  | Error e -> invalid_arg ("Member.decode: " ^ e ^ ": " ^ s)

let equal a b = encode a = encode b

let pp_view ppf v =
  Format.fprintf ppf "e%d:%a:%s" v.epoch Config.pp v.config
    (String.init (Array.length v.roster) (fun i -> status_char v.roster.(i)))

let pp ppf = function
  | Stable v -> Format.fprintf ppf "stable[%a]" pp_view v
  | Joint (o, n) -> Format.fprintf ppf "joint[%a -> %a]" pp_view o pp_view n
