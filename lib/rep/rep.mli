(** A directory representative (§3.1, Figure 6).

    One replica of the directory data: a B+tree gap map guarded by a range
    lock manager, with per-transaction undo logs and a write-ahead log for
    crash recovery. Every operation is performed on behalf of a transaction
    and takes the lock the paper specifies:

    - [lookup x] — RepLookup(x, x)
    - [predecessor x] — RepLookup(y, x) where y is the key returned
    - [successor x] — RepLookup(x, y) where y is the key returned
    - [insert x] — RepModify(x, x)
    - [coalesce l h] — RepModify(l, h)

    Locks are held until {!commit} or {!abort} (strict two-phase locking).

    Blocking: when a lock cannot be granted immediately the representative
    invokes the [waiter] it was created with, passing a registration function
    for the wake-up callback; the discrete-event simulator suspends the
    calling process there. The default waiter raises, which is correct for
    single-transaction (sequential) use where blocking is impossible. When a
    lock request would close a waits-for cycle, [Txn.Abort (Deadlock _)] is
    raised to unwind to the transaction boundary. *)

open Repdir_key
open Repdir_gapmap

exception Crashed of string
(** Raised by every operation while the representative is crashed. *)

exception Overloaded of string
(** Raised (carrying the representative's name) when the admission
    controller pushes a request back instead of executing it — the
    representative is alive but shedding load. Clients treat it like a
    transport failure: exclude this representative and collect the quorum
    elsewhere. Only raised when an {!admission} policy is configured. *)

exception Deadline_exceeded of string
(** Raised by {!reject_expired} when a request's client-stamped deadline has
    already passed on arrival: executing it would waste server capacity on
    work whose client has given up. *)

exception Stale_epoch of { rep : string; epoch : int; record : string }
(** Raised by {!fence_check} when the caller's membership epoch is older
    than this representative's: the request is rejected, and the exception
    carries the representative's newer epoch and encoded membership record
    so the sender can adopt the configuration and retry in one round
    trip. *)

exception Stale_shard_epoch of { rep : string; epoch : int; record : string }
(** Raised by {!shard_fence_check} when the caller's shard-map epoch is
    older than this representative's: the request is rejected, and the
    exception carries the newer epoch and encoded shard map so the router
    can adopt the ownership map and re-route in one round trip. *)

type waiter = ((unit -> unit) -> unit) -> unit
(** [waiter register]: block the current logical thread; [register] must be
    called immediately with the wake-up callback and returns at once; the
    waiter itself returns only once the callback has fired. *)

type timers = { now : unit -> float; after : float -> (unit -> unit) -> unit }
(** Clock access for leases and termination retries: [now] reads the virtual
    clock, [after d k] schedules [k] to run as a new logical thread [d] time
    units from now (it may block, e.g. on RPC). Without timers the
    representative never expires leases and never self-resolves in-doubt
    transactions. *)

(** Admission-control policy (off by default; needs [timers]). The
    representative keeps a sliding [window]-long record of admitted work as a
    stand-in for its request queue; an arrival finding [cap] or more entries
    is rejected {!Overloaded}, and from [shed_at] entries up the breaker
    sheds non-quorum-critical ([`Maintenance]) work — anti-entropy transfers
    and keepalives — first, keeping headroom for the operations quorums
    depend on. Termination traffic (prepare/commit/abort/outcome queries,
    notices) is never charged: shedding it would strand locks and in-doubt
    transactions and make the overload worse. *)
type admission = { window : float; cap : int; shed_at : int }

val default_admission : admission
(** [{ window = 10.0; cap = 96; shed_at = 64 }]. *)

type work_class = [ `Critical | `Maintenance ]

type resolution_source = By_coordinator | By_peer

type resolver = coord:int -> Repdir_txn.Txn.id -> ([ `Committed | `Aborted ] * resolution_source) option
(** Termination query callback, installed by the harness: ask the coordinator
    node [coord] for the transaction's decision and, if it is unreachable,
    ask peer representatives what they know ({!outcome_of}). [None] means
    nobody knows yet; the representative retries after a lease period. May
    block (RPC); exceptions are treated as [None]. *)

type t

(** Operation counters, for the performance characterization. *)
type counters = {
  mutable lookups : int;
  mutable predecessors : int;
  mutable successors : int;
  mutable inserts : int;
  mutable coalesces : int;
  mutable lock_waits : int;  (** lock requests that could not be granted immediately *)
  mutable digests : int;  (** anti-entropy digest requests served *)
  mutable pulls : int;  (** anti-entropy range transfers served *)
  mutable sync_applies : int;  (** anti-entropy merges applied here *)
  mutable leases_expired : int;  (** transaction leases that ran out *)
  mutable unilateral_aborts : int;  (** expiries terminated alone (unprepared) *)
  mutable indoubt_by_coordinator : int;  (** in-doubt resolved by asking the coordinator *)
  mutable indoubt_by_peer : int;  (** in-doubt resolved by asking a peer rep *)
  mutable indoubt_recovered : int;
      (** resolved in-doubt transactions that had been restored by crash recovery *)
  mutable batches : int;  (** {!execute} messages served *)
  mutable batch_ops : int;  (** individual ops run inside those batches *)
  mutable notices_applied : int;  (** piggybacked termination notices applied *)
  mutable readonly_finishes : int;  (** transactions released by {!finish_readonly} *)
  mutable admitted : int;  (** operations charged and admitted by admission control *)
  mutable overload_rejects : int;  (** arrivals pushed back at the admission cap *)
  mutable shed_rejects : int;  (** maintenance work shed by the overload breaker *)
  mutable expired_rejects : int;  (** requests refused because their deadline had passed *)
  mutable validates : int;  (** version-only tag reads served ({!validate_versions}) *)
}

val create :
  ?branching:int ->
  ?waiter:waiter ->
  ?lock_group:Repdir_lock.Lock_manager.group ->
  ?timers:timers ->
  ?lease:float ->
  ?resolver:resolver ->
  ?group_commit:float ->
  ?admission:admission ->
  name:string ->
  unit ->
  t
(** [lock_group] shares waits-for deadlock detection across representatives
    (see {!Repdir_lock.Lock_manager.group}); required whenever concurrent
    transactions span representatives. [timers] connects the representative
    to the virtual clock; [lease] (off by default) bounds how long a
    transaction may sit idle here before the termination protocol takes over;
    [resolver] answers in-doubt termination queries (also installable later
    with {!set_resolver}).

    [group_commit] (off by default; needs [timers]) is the WAL group-commit
    window: a transaction forcing the log (prepare, commit) first waits that
    long, and every force requested meanwhile rides on its single sync —
    coalescing the per-transaction forced writes under concurrent load. Must
    be well below [lease]: forcers block through the window while holding
    their locks.

    [admission] (off by default; needs [timers]) arms admission control over
    every Figure-6 operation, anti-entropy endpoint and keepalive — see
    {!admission}. Absent, no admission state is kept and the operation paths
    are byte-identical to a representative built before this knob existed. *)

val set_resolver : t -> resolver -> unit

val name : t -> string
val counters : t -> counters
val size : t -> int

(* --- membership-epoch fencing ---------------------------------------------- *)

val epoch : t -> int
(** The newest durably installed membership epoch (0 before any
    installation). *)

val membership : t -> string option
(** The encoded membership record of the installed epoch — the config
    endpoint a fenced sender refetches from. *)

val fence_check : t -> epoch:int -> unit
(** Reject a request stamped with an older epoch ({!Stale_epoch}); accept
    equal or newer stamps. The suite runs this at the head of every
    epoch-stamped RPC. Deliberately {e not} applied to termination traffic
    (commit/abort/outcome) or anti-entropy: prepared transactions must be
    able to settle across a configuration change, and zero-vote joiners
    must keep receiving catch-up sessions. *)

val install_epoch : t -> epoch:int -> record:string -> bool
(** Install a membership epoch: logged as {!Repdir_txn.Wal.Member_epoch} and
    forced before acknowledging, so a representative counted toward fence
    coverage cannot forget across a crash. Monotone — an older epoch is
    ignored (returns [true]: the fence is already at least this new);
    returns [false] only when the log refuses the append (injected io
    fault). *)

(* --- shard-map-epoch fencing ------------------------------------------------ *)

val shard_epoch : t -> int
(** The newest durably installed shard-map epoch (0 before any
    installation). *)

val shard_record : t -> string option
(** The encoded shard map of the installed epoch — what a stale router
    refetches. *)

val shard_view : t -> int * string
(** [(shard_epoch, encoded map)] in one read — the router's explicit
    map-refresh probe (e.g. when a write keeps landing on a migrating
    range and the router must learn the completed flip). *)

val shard_fence_check : t -> epoch:int -> unit
(** The sharding analogue of {!fence_check}: reject a request stamped with
    an older shard-map epoch ({!Stale_shard_epoch}); accept equal or newer
    stamps. Applied to the same stamped operation RPCs as the membership
    fence and, like it, never to termination traffic or anti-entropy. *)

val install_shard_epoch : t -> epoch:int -> record:string -> bool
(** Install a shard-map epoch: logged as {!Repdir_txn.Wal.Shard_epoch},
    forced before acknowledging, monotone — same contract as
    {!install_epoch}. *)

(* --- overload and deadline pushback ---------------------------------------- *)

val reject_expired : t -> deadline:float -> unit
(** Refuse work whose client-stamped absolute [deadline] (on this
    representative's clock) has already passed: raises {!Deadline_exceeded}
    instead of letting the operation execute. The suite calls this at the
    head of every deadline-stamped RPC. A representative without [timers]
    ignores the stamp. Raises {!Crashed} while down. *)

val admission_depth : t -> int
(** Entries currently in the admission window (stale entries are pruned
    lazily, on the next charge). 0 when admission control is off. *)

(* --- Figure 6 operations -------------------------------------------------- *)

val lookup : t -> txn:Repdir_txn.Txn.id -> Bound.t -> Gapmap_intf.lookup

(** A key's version tag with the payload shed: the entry's version when
    present, the containing gap's version when absent. Because every key —
    present or absent — has exactly one version here, a tag is a complete
    currency proof for a client-cached entry or gap line. *)
type version_tag = Tag_entry of Repdir_key.Version.t | Tag_gap of Repdir_key.Version.t

val validate_versions :
  t -> txn:Repdir_txn.Txn.id -> Bound.t list -> version_tag list
(** Version tags for the given keys, positionally. Takes the same
    RepLookup(point) lock as {!lookup} for each key — the serialization
    point of a cache-validated read is identical to a payload read's; only
    the reply bytes differ. *)

val predecessor : t -> txn:Repdir_txn.Txn.id -> Bound.t -> Gapmap_intf.neighbor
val successor : t -> txn:Repdir_txn.Txn.id -> Bound.t -> Gapmap_intf.neighbor
val predecessor_chain :
  t -> txn:Repdir_txn.Txn.id -> Bound.t -> depth:int -> Gapmap_intf.neighbor list
(** Up to [depth] successive predecessors (descending), each with the version
    of the gap following it — the §4 batching: "each member of a read quorum
    sends the results of three successive DirRepPredecessor ... operations in
    a single message". The list ends early at LOW (inclusive). Takes one
    RepLookup lock spanning the whole returned range. *)

val successor_chain :
  t -> txn:Repdir_txn.Txn.id -> Bound.t -> depth:int -> Gapmap_intf.neighbor list
(** Mirror of {!predecessor_chain}: up to [depth] successive successors
    (ascending), each with the version of the gap *preceding* it. *)

val insert : t -> txn:Repdir_txn.Txn.id -> Key.t -> Version.t -> Gapmap_intf.value -> unit

val coalesce :
  t -> txn:Repdir_txn.Txn.id -> lo:Bound.t -> hi:Bound.t -> Version.t -> int
(** Returns the number of entries deleted (the paper's "entries in ranges
    coalesced" statistic for this representative). Raises
    {!Gapmap_intf.Missing_endpoint} if an endpoint entry is absent. *)

(* --- anti-entropy endpoints ------------------------------------------------- *)

val digest_range :
  t -> txn:Repdir_txn.Txn.id -> lo:Bound.t -> hi:Bound.t -> Gapmap_intf.digest
(** Digest of this representative's state over [(lo, hi]], under a
    RepLookup(lo, hi) lock — concurrent modifications of the range are
    serialized against the sync transaction. *)

val digest_interior_range :
  t -> txn:Repdir_txn.Txn.id -> lo:Bound.t -> hi:Bound.t -> Gapmap_intf.digest
(** Like {!digest_range} but excluding the version of the gap immediately
    above [lo] (RepLookup lock). That gap can extend below [lo], so its
    version moves with deletions outside the range; convergence gates over a
    write-fenced slice compare this digest instead, since the fence freezes
    the slice's entries and interior gaps but not the shared boundary
    gap. *)

val split_range :
  t -> txn:Repdir_txn.Txn.id -> lo:Bound.t -> hi:Bound.t -> arity:int -> Bound.t list
(** Interior cut keys partitioning the range into roughly entry-equal
    sub-ranges (RepLookup lock), for recursing into a digest mismatch. *)

val pull_range :
  t -> txn:Repdir_txn.Txn.id -> lo:Bound.t -> hi:Bound.t -> Gapmap_intf.transfer
(** Versioned transfer of the range's full state (RepLookup lock). *)

val apply_range :
  t -> txn:Repdir_txn.Txn.id -> Gapmap_intf.transfer -> Gapmap_intf.applied
(** Merge a peer's transfer under a RepModify(t_lo, t_hi) lock: install or
    overwrite entries the peer holds at strictly higher versions, raise
    dominated gap versions (never beyond what the peer attests), and delete
    entries dominated by a newer peer gap when the removal is exact. The
    merge is a plan of primitive ops written to the write-ahead log as one
    {!Repdir_txn.Wal.record.Sync_apply} record and undo-logged op by op, so
    it aborts and replays like any other transaction work. Idempotent: a
    second apply of the same transfer is a no-op (versions never lowered). *)

val root_digest : t -> Gapmap_intf.digest
(** Lock-free digest of the whole directory, for convergence checks by the
    harness (not part of the locked protocol). Raises {!Crashed} while the
    representative is down. *)

val keepalive : t -> txn:Repdir_txn.Txn.id -> unit
(** Renew the transaction's lease here without taking locks or doing work.
    A long multi-peer sync session leaves all but one participant idle while
    it walks the others; without heartbeats those idle leases expire and
    unilaterally abort the session from under it. Raises like any other
    operation if the transaction has already been terminated here. *)

(* --- batched execution ------------------------------------------------------ *)

(** One step of a batched message (§4: representative calls "batch into few
    messages"): the suite packs each round's per-representative calls into a
    single {!execute} RPC instead of one RPC per call. *)
type batch_op =
  | B_lookup of Bound.t
  | B_validate of Bound.t
      (** Version-only lookup ({!validate_versions} for one key), for
          piggybacking cache validations on a batched round. *)
  | B_predecessor of Bound.t
  | B_successor of Bound.t
  | B_predecessor_chain of Bound.t * int  (** bound, depth *)
  | B_successor_chain of Bound.t * int
  | B_insert of Key.t * Version.t * Gapmap_intf.value
  | B_insert_if_absent of Key.t * Version.t * Gapmap_intf.value
      (** Fused existence check + conditional copy, for the delete repair
          round; a no-op (taking only the lock) when the key is present. *)
  | B_coalesce of Bound.t * Bound.t * Version.t  (** lo, hi, version *)
  | B_prepare of int
      (** Two-phase-commit vote piggybacked on the transaction's final work
          round (last-round optimization); the argument is the coordinator
          node. Everything {!prepare} implies applies — in particular the
          vote binds even though the client learns it together with the
          round's results. *)
  | B_finish_readonly
      (** Release the transaction here if (and only if) it did no work at
          this representative — see {!finish_readonly}. *)

type batch_result =
  | R_lookup of Gapmap_intf.lookup
  | R_tag of version_tag  (** [B_validate]: the key's version tag *)
  | R_neighbor of Gapmap_intf.neighbor
  | R_chain of Gapmap_intf.neighbor list
  | R_unit
  | R_inserted of bool  (** [B_insert_if_absent]: whether the copy was installed *)
  | R_removed of int  (** [B_coalesce]: entries deleted *)
  | R_finished of bool  (** [B_finish_readonly]: whether the release was granted *)

(** A deferred termination record for a transaction *other* than the one a
    message is executing: piggybacked on the next message to this
    representative instead of costing a dedicated commit-round message. *)
type notice = N_commit of Repdir_txn.Txn.id | N_abort of Repdir_txn.Txn.id

val execute : t -> txn:Repdir_txn.Txn.id -> batch_op list -> batch_result list
(** Run the ops strictly in list order on behalf of one transaction and
    return their results positionally. The first op to fail raises,
    abandoning the rest of the batch; earlier ops keep their effects —
    isolated by the transaction's locks and undone by its abort — exactly as
    if each op had been its own RPC. Safe under at-most-once retransmission
    for the same reason the individual ops are: a duplicate execution
    re-runs idempotent steps under the locks the first run still holds. *)

val deliver_notices : t -> notice list -> unit
(** Apply piggybacked termination notices. Commit/abort of an unknown or
    already-terminated transaction is a no-op (stale notice); a
    conflicting-outcome refusal is swallowed — the termination protocol has
    already settled that transaction authoritatively. *)

val insert_if_absent :
  t -> txn:Repdir_txn.Txn.id -> Key.t -> Version.t -> Gapmap_intf.value -> bool
(** [B_insert_if_absent] as a direct call: install the entry unless the key
    is already present (any version). Returns whether it inserted. *)

val finish_readonly : t -> txn:Repdir_txn.Txn.id -> bool
(** Release the transaction's locks and lease here without recording an
    outcome, provided it performed no writes at this representative, is not
    prepared, and is not in doubt — the batched fast path ending a read-only
    visit in the same message as its reads. Returns false (and changes
    nothing) otherwise; the client then falls back to the normal
    prepare/commit round. No outcome is recorded because this
    representative's vote was never collected, so it must keep answering
    [`Unknown] to termination queries. *)

(* --- transaction boundary -------------------------------------------------- *)

val prepare : t -> txn:Repdir_txn.Txn.id -> coord:int -> unit
(** Two-phase commit vote: durably record (with the coordinator's node id)
    that the transaction's effects are complete here. Locks stay held; the
    outcome is the coordinator's decision. A crash after prepare leaves the
    transaction in doubt; {!recover} restores it — locks re-held, effects
    withheld — and the termination protocol resolves it. Raises [Txn.Abort]
    if this representative already aborted the transaction (e.g. a lease
    expired and it aborted unilaterally) or lost its effects in a crash. *)

val commit : t -> txn:Repdir_txn.Txn.id -> unit
val abort : t -> txn:Repdir_txn.Txn.id -> unit
(** Both release the transaction's locks; abort also rolls back its effects.
    Idempotent under duplicate delivery. Raises [Txn.Abort] when asked for
    the outcome opposite to one already recorded — a representative never
    both commits and aborts the same transaction. *)

(* --- transaction termination ------------------------------------------------ *)

val outcome_of : t -> Repdir_txn.Txn.id -> [ `Committed | `Aborted | `Unknown ]
(** What this representative durably knows about a transaction's fate — the
    answer it serves to a peer's termination query. Both definite answers are
    final: [`Committed] implies the coordinator logged commit; [`Aborted]
    implies the coordinator can never commit (it either decided abort or can
    no longer gather this rep's vote). *)

val resolve_in_doubt : t -> txn:Repdir_txn.Txn.id -> [ `Committed | `Aborted ] -> unit
(** Terminate an in-doubt transaction with a verdict obtained out of band
    (tests, harness). No-op if the transaction is not in doubt here. *)

val in_doubt_txns : t -> Repdir_txn.Txn.id list
(** Prepared-but-undecided transactions currently blocking their write
    ranges, ascending. *)

val in_doubt_count : t -> int

val locks_held : t -> int
(** Granted range locks, all transactions. Zero at quiesce — any residue is
    an orphaned lock the termination protocol failed to clean up. *)

val lock_waiters : t -> int
(** Queued lock requests; zero at quiesce. *)

(* --- failure injection and recovery ---------------------------------------- *)

val crash : t -> unit
(** Lose all volatile state (gap map, lock table, undo logs). The write-ahead
    log survives. In-flight transactions are implicitly aborted: their
    records lack a commit record and are ignored at replay. *)

val is_crashed : t -> bool

val incarnation : t -> int
(** Number of completed recoveries. Bumped by {!recover}, so two reads that
    disagree bracket a crash: any volatile state (locks, undo logs, RPC dedup
    entries, unforced log records) from the earlier incarnation is gone. The
    suite uses this to fail transactions that span a participant restart. *)

val inject_storage_fault : t -> Repdir_txn.Wal.storage_fault -> unit
(** Damage the write-ahead log's persistent frames (torn/corrupted/lost
    tail), as a crash can; meaningful when followed by {!crash} and
    {!recover}, which scrubs the damage back to the committed prefix. *)

val set_io_fault : t -> Repdir_txn.Wal.io_fault option -> unit
(** Arm or heal an injected WAL write failure (disk full, io error). While
    armed, every operation that must log a record aborts its transaction
    cleanly — [Txn.Abort (Unavailable _)], locks released at the boundary —
    and the representative stays up; presumed-abort outcome records are
    simply skipped. Heal before {!recover}: recovery must write its marker. *)

val io_fault : t -> Repdir_txn.Wal.io_fault option

val wal_records_repaired : t -> int
(** Total log records discarded by recovery-time scrubbing across all
    recoveries (0 when no storage fault was ever injected). *)

val recover : t -> unit
(** Scrub the write-ahead log back to its longest checksum-valid prefix
    (discarding any torn or corrupted tail), then rebuild the gap map from
    the committed records. Transactions prepared but undecided at the crash
    are restored as in-doubt: their effects are withheld from the map, their
    write ranges re-locked, and the termination protocol (resolver queries to
    the coordinator, then peers) decides their fate — commit replays their
    redo records, abort drops them. Deciding locally would be unsound: the
    coordinator may have logged a commit this representative never saw. *)

val checkpoint : t -> unit
(** Write a checkpoint record and truncate the log. Raises [Invalid_argument]
    if any transaction is active on this representative. *)

val wal_length : t -> int

val wal_unsynced : t -> int
(** Log records appended since the last forced write (prepare, commit,
    checkpoint or recovery). Only these can be damaged by a crash-time
    storage fault — a torn write needs unforced bytes to tear. *)

val wal_group_forces : t -> int
(** Syncs actually issued on the prepare/commit paths (with no group-commit
    window, exactly one per force request). *)

val wal_group_absorbed : t -> int
(** Force requests that rode on a concurrent transaction's sync instead of
    issuing their own — group commit's savings at this representative. *)

(* --- inspection ------------------------------------------------------------ *)

val entries : t -> (Key.t * Version.t * Gapmap_intf.value) list
val gaps : t -> (Bound.t * Bound.t * Version.t) list
val check_invariants : t -> (unit, string) result

val active_txn_count : t -> int
(** Transactions with live lease records here; zero at quiesce. *)

val scrub : t -> string list
(** Quiesce-time deep self-check: gap-map structural invariants (entries and
    gaps exactly tile [LOW, HIGH]) and, when no transaction is active or in
    doubt, equality of the live map with a committed-only replay of the
    write-ahead log (which subsumes version monotonicity with respect to the
    WAL). Returns human-readable violation descriptions; empty means
    clean. *)

val pp : Format.formatter -> t -> unit
