(** A directory representative (§3.1, Figure 6).

    One replica of the directory data: a B+tree gap map guarded by a range
    lock manager, with per-transaction undo logs and a write-ahead log for
    crash recovery. Every operation is performed on behalf of a transaction
    and takes the lock the paper specifies:

    - [lookup x] — RepLookup(x, x)
    - [predecessor x] — RepLookup(y, x) where y is the key returned
    - [successor x] — RepLookup(x, y) where y is the key returned
    - [insert x] — RepModify(x, x)
    - [coalesce l h] — RepModify(l, h)

    Locks are held until {!commit} or {!abort} (strict two-phase locking).

    Blocking: when a lock cannot be granted immediately the representative
    invokes the [waiter] it was created with, passing a registration function
    for the wake-up callback; the discrete-event simulator suspends the
    calling process there. The default waiter raises, which is correct for
    single-transaction (sequential) use where blocking is impossible. When a
    lock request would close a waits-for cycle, [Txn.Abort (Deadlock _)] is
    raised to unwind to the transaction boundary. *)

open Repdir_key
open Repdir_gapmap

exception Crashed of string
(** Raised by every operation while the representative is crashed. *)

type waiter = ((unit -> unit) -> unit) -> unit
(** [waiter register]: block the current logical thread; [register] must be
    called immediately with the wake-up callback and returns at once; the
    waiter itself returns only once the callback has fired. *)

type t

(** Operation counters, for the performance characterization. *)
type counters = {
  mutable lookups : int;
  mutable predecessors : int;
  mutable successors : int;
  mutable inserts : int;
  mutable coalesces : int;
  mutable lock_waits : int;  (** lock requests that could not be granted immediately *)
  mutable digests : int;  (** anti-entropy digest requests served *)
  mutable pulls : int;  (** anti-entropy range transfers served *)
  mutable sync_applies : int;  (** anti-entropy merges applied here *)
}

val create :
  ?branching:int ->
  ?waiter:waiter ->
  ?lock_group:Repdir_lock.Lock_manager.group ->
  ?registry:Repdir_txn.Commit_registry.t ->
  name:string ->
  unit ->
  t
(** [lock_group] shares waits-for deadlock detection across representatives
    (see {!Repdir_lock.Lock_manager.group}); required whenever concurrent
    transactions span representatives. [registry] is the coordinator decision
    record consulted for two-phase commit and in-doubt recovery. *)

val name : t -> string
val counters : t -> counters
val size : t -> int

(* --- Figure 6 operations -------------------------------------------------- *)

val lookup : t -> txn:Repdir_txn.Txn.id -> Bound.t -> Gapmap_intf.lookup
val predecessor : t -> txn:Repdir_txn.Txn.id -> Bound.t -> Gapmap_intf.neighbor
val successor : t -> txn:Repdir_txn.Txn.id -> Bound.t -> Gapmap_intf.neighbor
val predecessor_chain :
  t -> txn:Repdir_txn.Txn.id -> Bound.t -> depth:int -> Gapmap_intf.neighbor list
(** Up to [depth] successive predecessors (descending), each with the version
    of the gap following it — the §4 batching: "each member of a read quorum
    sends the results of three successive DirRepPredecessor ... operations in
    a single message". The list ends early at LOW (inclusive). Takes one
    RepLookup lock spanning the whole returned range. *)

val successor_chain :
  t -> txn:Repdir_txn.Txn.id -> Bound.t -> depth:int -> Gapmap_intf.neighbor list
(** Mirror of {!predecessor_chain}: up to [depth] successive successors
    (ascending), each with the version of the gap *preceding* it. *)

val insert : t -> txn:Repdir_txn.Txn.id -> Key.t -> Version.t -> Gapmap_intf.value -> unit

val coalesce :
  t -> txn:Repdir_txn.Txn.id -> lo:Bound.t -> hi:Bound.t -> Version.t -> int
(** Returns the number of entries deleted (the paper's "entries in ranges
    coalesced" statistic for this representative). Raises
    {!Gapmap_intf.Missing_endpoint} if an endpoint entry is absent. *)

(* --- anti-entropy endpoints ------------------------------------------------- *)

val digest_range :
  t -> txn:Repdir_txn.Txn.id -> lo:Bound.t -> hi:Bound.t -> Gapmap_intf.digest
(** Digest of this representative's state over [(lo, hi]], under a
    RepLookup(lo, hi) lock — concurrent modifications of the range are
    serialized against the sync transaction. *)

val split_range :
  t -> txn:Repdir_txn.Txn.id -> lo:Bound.t -> hi:Bound.t -> arity:int -> Bound.t list
(** Interior cut keys partitioning the range into roughly entry-equal
    sub-ranges (RepLookup lock), for recursing into a digest mismatch. *)

val pull_range :
  t -> txn:Repdir_txn.Txn.id -> lo:Bound.t -> hi:Bound.t -> Gapmap_intf.transfer
(** Versioned transfer of the range's full state (RepLookup lock). *)

val apply_range :
  t -> txn:Repdir_txn.Txn.id -> Gapmap_intf.transfer -> Gapmap_intf.applied
(** Merge a peer's transfer under a RepModify(t_lo, t_hi) lock: install or
    overwrite entries the peer holds at strictly higher versions, raise
    dominated gap versions (never beyond what the peer attests), and delete
    entries dominated by a newer peer gap when the removal is exact. The
    merge is a plan of primitive ops written to the write-ahead log as one
    {!Repdir_txn.Wal.record.Sync_apply} record and undo-logged op by op, so
    it aborts and replays like any other transaction work. Idempotent: a
    second apply of the same transfer is a no-op (versions never lowered). *)

val root_digest : t -> Gapmap_intf.digest
(** Lock-free digest of the whole directory, for convergence checks by the
    harness (not part of the locked protocol). Raises {!Crashed} while the
    representative is down. *)

(* --- transaction boundary -------------------------------------------------- *)

val prepare : t -> txn:Repdir_txn.Txn.id -> unit
(** Two-phase commit vote: durably record that the transaction's effects are
    complete here. Locks stay held; the outcome is the coordinator's
    decision. A crash after prepare leaves the transaction in doubt, and
    {!recover} resolves it against the registry. *)

val commit : t -> txn:Repdir_txn.Txn.id -> unit
val abort : t -> txn:Repdir_txn.Txn.id -> unit
(** Both release the transaction's locks; abort also rolls back its effects. *)

(* --- failure injection and recovery ---------------------------------------- *)

val crash : t -> unit
(** Lose all volatile state (gap map, lock table, undo logs). The write-ahead
    log survives. In-flight transactions are implicitly aborted: their
    records lack a commit record and are ignored at replay. *)

val is_crashed : t -> bool

val incarnation : t -> int
(** Number of completed recoveries. Bumped by {!recover}, so two reads that
    disagree bracket a crash: any volatile state (locks, undo logs, RPC dedup
    entries, unforced log records) from the earlier incarnation is gone. The
    suite uses this to fail transactions that span a participant restart. *)

val inject_storage_fault : t -> Repdir_txn.Wal.storage_fault -> unit
(** Damage the write-ahead log's persistent frames (torn/corrupted/lost
    tail), as a crash can; meaningful when followed by {!crash} and
    {!recover}, which scrubs the damage back to the committed prefix. *)

val wal_records_repaired : t -> int
(** Total log records discarded by recovery-time scrubbing across all
    recoveries (0 when no storage fault was ever injected). *)

val recover : t -> unit
(** Scrub the write-ahead log back to its longest checksum-valid prefix
    (discarding any torn or corrupted tail), then rebuild the gap map from
    it. Transactions prepared but undecided at the crash are resolved
    against the registry: if the coordinator had decided commit, their
    effects are replayed; otherwise the representative registers an abort
    resolution (first-writer-wins with the coordinator) and discards
    them. *)

val checkpoint : t -> unit
(** Write a checkpoint record and truncate the log. Raises [Invalid_argument]
    if any transaction is active on this representative. *)

val wal_length : t -> int

val wal_unsynced : t -> int
(** Log records appended since the last forced write (prepare, commit,
    checkpoint or recovery). Only these can be damaged by a crash-time
    storage fault — a torn write needs unforced bytes to tear. *)

(* --- inspection ------------------------------------------------------------ *)

val entries : t -> (Key.t * Version.t * Gapmap_intf.value) list
val gaps : t -> (Bound.t * Bound.t * Version.t) list
val check_invariants : t -> (unit, string) result
val pp : Format.formatter -> t -> unit
