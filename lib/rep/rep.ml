open Repdir_key
open Repdir_lock
open Repdir_txn
module Btree = Repdir_gapmap.Btree
module Undo_apply = Undo.Apply (Btree)
module Wal_replay = Wal.Replay (Btree)

exception Crashed of string

exception Overloaded of string

exception Deadline_exceeded of string

exception Stale_epoch of { rep : string; epoch : int; record : string }

exception Stale_shard_epoch of { rep : string; epoch : int; record : string }

type waiter = ((unit -> unit) -> unit) -> unit

type timers = { now : unit -> float; after : float -> (unit -> unit) -> unit }

(* Admission control: a sliding arrival window standing in for the request
   queue of a real server. [cap] is the hard admission bound (everything
   past it is pushed back [Overloaded]); [shed_at] is the breaker threshold
   at which non-quorum-critical work (anti-entropy, keepalives) is shed
   first, keeping headroom for the operations quorums depend on. *)
type admission = { window : float; cap : int; shed_at : int }

let default_admission = { window = 10.0; cap = 96; shed_at = 64 }

type work_class = [ `Critical | `Maintenance ]

type resolution_source = By_coordinator | By_peer

type resolver = coord:int -> Txn.id -> ([ `Committed | `Aborted ] * resolution_source) option

type counters = {
  mutable lookups : int;
  mutable predecessors : int;
  mutable successors : int;
  mutable inserts : int;
  mutable coalesces : int;
  mutable lock_waits : int;
  mutable digests : int;
  mutable pulls : int;
  mutable sync_applies : int;
  mutable leases_expired : int;
  mutable unilateral_aborts : int;
  mutable indoubt_by_coordinator : int;
  mutable indoubt_by_peer : int;
  mutable indoubt_recovered : int;
  mutable batches : int;
  mutable batch_ops : int;
  mutable notices_applied : int;
  mutable readonly_finishes : int;
  mutable admitted : int;
  mutable overload_rejects : int;
  mutable shed_rejects : int;
  mutable expired_rejects : int;
  mutable validates : int;
}

(* Volatile per-transaction lease state. *)
type active = { mutable deadline : float; mutable prepared : bool; mutable coord : int }

(* An in-doubt (prepared, undecided) transaction awaiting termination. *)
type indoubt = { id_coord : int; id_recovered : bool }

type t = {
  name : string;
  branching : int;
  waiter : waiter;
  lock_group : Lock_manager.group;
  timers : timers option;
  lease : float option;
  mutable resolver : resolver option;
  mutable map : Btree.t;
  mutable locks : Lock_manager.t;
  mutable undo : Undo.t;
  wal : Wal.t;
  actives : (Txn.id, active) Hashtbl.t;
  outcomes : (Txn.id, [ `Committed | `Aborted ]) Hashtbl.t;
  indoubt : (Txn.id, indoubt) Hashtbl.t;
  mutable crashed : bool;
  mutable incarnation : int;
  (* Membership-epoch fence: volatile cache of the newest durably installed
     [Wal.Member_epoch] record. 0 / "" until the first installation. *)
  mutable m_epoch : int;
  mutable m_record : string;
  (* Shard-map-epoch fence: the sharding analogue of the membership fence,
     caching the newest durably installed [Wal.Shard_epoch] record. *)
  mutable s_epoch : int;
  mutable s_record : string;
  mutable wal_records_repaired : int;
  group_window : float option;
  group : Wal.Group.group;
  admission : admission option;
  arrivals : float Queue.t;  (* admission window: admit times of recent work *)
  counters : counters;
}

let no_waiter _register =
  failwith "Rep: lock wait in sequential mode (no waiter installed)"

let create ?(branching = Btree.default_branching) ?(waiter = no_waiter)
    ?(lock_group = Lock_manager.new_group ()) ?timers ?lease ?resolver ?group_commit
    ?admission ~name () =
  {
    name;
    branching;
    waiter;
    lock_group;
    timers;
    lease;
    resolver;
    map = Btree.create_with ~branching ();
    locks = Lock_manager.create ~group:lock_group ();
    undo = Undo.create ();
    wal = Wal.create ();
    actives = Hashtbl.create 16;
    outcomes = Hashtbl.create 64;
    indoubt = Hashtbl.create 8;
    crashed = false;
    incarnation = 0;
    m_epoch = 0;
    m_record = "";
    s_epoch = 0;
    s_record = "";
    wal_records_repaired = 0;
    group_window = group_commit;
    group = Wal.Group.create ();
    admission;
    arrivals = Queue.create ();
    counters =
      {
        lookups = 0;
        predecessors = 0;
        successors = 0;
        inserts = 0;
        coalesces = 0;
        lock_waits = 0;
        digests = 0;
        pulls = 0;
        sync_applies = 0;
        leases_expired = 0;
        unilateral_aborts = 0;
        indoubt_by_coordinator = 0;
        indoubt_by_peer = 0;
        indoubt_recovered = 0;
        batches = 0;
        batch_ops = 0;
        notices_applied = 0;
        readonly_finishes = 0;
        admitted = 0;
        overload_rejects = 0;
        shed_rejects = 0;
        expired_rejects = 0;
        validates = 0;
      };
  }

let name t = t.name
let counters t = t.counters
let size t = Btree.size t.map
let check_alive t = if t.crashed then raise (Crashed t.name)
let set_resolver t r = t.resolver <- Some r
let wal_group_forces t = Wal.Group.forces t.group
let wal_group_absorbed t = Wal.Group.absorbed t.group

(* --- group commit ------------------------------------------------------------- *)

(* Force the log, coalescing concurrent forces into one sync when a group
   window is configured (and a clock is available to hold it open). The
   first forcer leads: it waits out the window, syncs once, and wakes every
   follower that asked meanwhile — their records were appended before they
   blocked, so the leader's sync covers them. The window must be well below
   any transaction lease: a forcer blocks here while prepared (or about to
   acknowledge), and a window approaching the lease would push healthy
   transactions into the termination protocol. *)
let force_wal t =
  match (t.group_window, t.timers) with
  | Some window, Some timers when window > 0. ->
      let g = t.group in
      let ticket = Wal.length t.wal in
      if Wal.synced_length t.wal >= ticket then ()
      else if Wal.Group.armed g then begin
        (* Follower: ride on the leader's sync. *)
        let inc = t.incarnation in
        let wake = ref ignore in
        let settled = ref None in
        Wal.Group.enqueue g (fun outcome ->
            settled := Some outcome;
            !wake ());
        if !settled = None then t.waiter (fun w -> wake := w);
        if t.crashed || t.incarnation <> inc then raise (Crashed t.name);
        (* Covered unless the group was cancelled from under us. *)
        if Wal.synced_length t.wal < ticket then begin
          Wal.sync t.wal;
          Wal.Group.count_force g
        end
      end
      else begin
        (* Leader: hold the window open, then sync for everyone. *)
        Wal.Group.lead g;
        let inc = t.incarnation in
        let wake = ref ignore in
        let fired = ref false in
        timers.after window (fun () ->
            fired := true;
            !wake ());
        if not !fired then t.waiter (fun w -> wake := w);
        if t.crashed || t.incarnation <> inc then raise (Crashed t.name);
        Wal.sync t.wal;
        Wal.Group.settle g Wal.Group.Forced
      end
  | _ ->
      Wal.sync t.wal;
      Wal.Group.count_force t.group

(* Append a record on a representative write path, translating an injected
   storage failure (disk full, io error) into a clean transaction abort: the
   exception unwinds to the transaction boundary, the client aborts or
   retries, and the representative itself stays up and keeps serving other
   transactions — degrade, don't wedge. *)
let wal_append_or_abort t r =
  match Wal.try_append t.wal r with
  | Ok () -> ()
  | Error f ->
      raise
        (Txn.Abort
           (Txn.Unavailable
              (Format.asprintf "%s: wal append failed (%a)" t.name Wal.pp_io_fault f)))

(* --- membership-epoch fencing --------------------------------------------------- *)

let epoch t = t.m_epoch
let membership t = if t.m_record = "" then None else Some t.m_record

(* The fence proper: a request stamped with an older epoch is rejected, and
   the rejection carries this representative's newer record so the sender
   refetches the configuration in the same round trip. Requests from a
   *newer* epoch are accepted — the sender's quorum rules are current even
   if this representative has not been told yet; it learns by explicit
   installation. Only new work is fenced: termination traffic (commit,
   abort, outcome queries) and anti-entropy must keep flowing across a
   change, or prepared transactions could never settle and zero-vote
   joiners could never catch up. *)
let fence_check t ~epoch =
  check_alive t;
  if epoch < t.m_epoch then
    raise (Stale_epoch { rep = t.name; epoch = t.m_epoch; record = t.m_record })

let install_epoch t ~epoch ~record =
  check_alive t;
  if epoch <= t.m_epoch then t.m_epoch >= epoch
  else
    match Wal.try_append t.wal (Wal.Member_epoch (epoch, record)) with
    | Error _ -> false
    | Ok () ->
        (* Force before acknowledging: a crash after the caller counts this
           representative toward fence coverage must not lose the fence. *)
        force_wal t;
        t.m_epoch <- epoch;
        t.m_record <- record;
        true

(* --- shard-map-epoch fencing ----------------------------------------------------- *)

(* The exact analogue of the membership fence for the multi-group directory:
   requests are stamped with the client's shard-map epoch, and a stamp older
   than this representative's durably installed one is rejected with the
   newer encoded map so the router re-routes in the same round trip. Requests
   from a newer epoch pass — the sender's map is current even if this
   representative has not been told yet. Termination traffic and anti-entropy
   stay unfenced for the same liveness reasons as the membership fence. *)

let shard_epoch t = t.s_epoch
let shard_record t = if t.s_record = "" then None else Some t.s_record
let shard_view t = (t.s_epoch, t.s_record)

let shard_fence_check t ~epoch =
  check_alive t;
  if epoch < t.s_epoch then
    raise (Stale_shard_epoch { rep = t.name; epoch = t.s_epoch; record = t.s_record })

let install_shard_epoch t ~epoch ~record =
  check_alive t;
  if epoch <= t.s_epoch then t.s_epoch >= epoch
  else
    match Wal.try_append t.wal (Wal.Shard_epoch (epoch, record)) with
    | Error _ -> false
    | Ok () ->
        force_wal t;
        t.s_epoch <- epoch;
        t.s_record <- record;
        true

(* --- transaction termination -------------------------------------------------- *)

(* Retry period for termination queries when no lease interval is configured
   (in-doubt transactions can still arise from crash recovery). *)
let default_resolve_retry = 30.0

let retry_period t = match t.lease with Some l -> l | None -> default_resolve_retry

(* Terminate an in-doubt transaction with a known-final verdict. Idempotent:
   a duplicate decision (coordinator retry racing a peer answer) finds the
   transaction already gone and does nothing. For a transaction restored by
   crash recovery the effects were withheld at replay, so commit means
   re-applying its redo records now — sound because its write ranges stayed
   locked the whole time — and abort means simply dropping them. *)
let resolve_in_doubt t ~txn verdict =
  match Hashtbl.find_opt t.indoubt txn with
  | None -> ()
  | Some info ->
      let writable =
        match verdict with
        | `Committed -> (
            (* The commit record must be durable before the effects become
               visible. If the disk refuses the write, stay in doubt: the
               resolution loop re-asks later, when storage may have healed. *)
            match Wal.try_append t.wal (Wal.Commit txn) with
            | Ok () ->
                force_wal t;
                true
            | Error _ -> false)
        | `Aborted ->
            (* Abort records are an optimization under presumed abort — a
               transaction with no commit record never replays — so a failed
               append loses nothing. *)
            ignore (Wal.try_append t.wal (Wal.Abort txn) : (unit, Wal.io_fault) result);
            true
      in
      if writable then begin
        Hashtbl.remove t.indoubt txn;
        Hashtbl.remove t.actives txn;
        Hashtbl.replace t.outcomes txn verdict;
        (match verdict with
        | `Committed ->
            if info.id_recovered then Wal_replay.redo t.wal txn t.map
            else Undo.forget t.undo ~txn
        | `Aborted -> if not info.id_recovered then Undo_apply.rollback t.undo ~txn t.map);
        Lock_manager.release_all t.locks ~txn
      end

(* Lease bookkeeping and the termination protocol proper. The timer chain
   re-arms itself while the lease keeps being renewed; both the chain and the
   resolution loop carry the incarnation at which they were started so a
   crash orphans them harmlessly. *)
let rec arm_lease_timer t ~txn ~at =
  match t.timers with
  | None -> ()
  | Some timers ->
      let inc = t.incarnation in
      timers.after
        (Float.max 0. (at -. timers.now ()))
        (fun () ->
          if (not t.crashed) && t.incarnation = inc then
            match Hashtbl.find_opt t.actives txn with
            | None -> () (* terminated in the meantime *)
            | Some a ->
                if timers.now () >= a.deadline -. 1e-9 then expire t ~txn a
                else arm_lease_timer t ~txn ~at:a.deadline)

and expire t ~txn (a : active) =
  t.counters.leases_expired <- t.counters.leases_expired + 1;
  Hashtbl.remove t.actives txn;
  if a.prepared then begin
    (* A prepared vote is binding: the participant must not decide alone.
       It enters the in-doubt state — only writers to the transaction's
       ranges block, the rest of the representative stays available — and
       queries the coordinator (then peers) until someone knows. *)
    Hashtbl.replace t.indoubt txn { id_coord = a.coord; id_recovered = false };
    start_resolution t ~txn
  end
  else begin
    (* Unprepared: presumed abort lets the participant abort unilaterally
       and release its locks. The coordinator can never commit this
       transaction afterwards, because any later prepare here is refused. *)
    t.counters.unilateral_aborts <- t.counters.unilateral_aborts + 1;
    Hashtbl.replace t.outcomes txn `Aborted;
    (* Presumed abort: the abort record is an optimization, so an injected
       storage failure must not block the unilateral abort itself. *)
    ignore (Wal.try_append t.wal (Wal.Abort txn) : (unit, Wal.io_fault) result);
    Undo_apply.rollback t.undo ~txn t.map;
    Lock_manager.release_all t.locks ~txn
  end

and start_resolution t ~txn =
  match t.timers with
  | None -> () (* terminated only by an explicit commit/abort/resolve call *)
  | Some timers ->
      let inc = t.incarnation in
      let rec step () =
        if (not t.crashed) && t.incarnation = inc then
          match Hashtbl.find_opt t.indoubt txn with
          | None -> ()
          | Some info -> (
              let answer =
                match t.resolver with
                | None -> None
                | Some resolve -> ( try resolve ~coord:info.id_coord txn with _ -> None)
              in
              (* The query blocked; re-check that nothing terminated the
                 transaction (or crashed the rep) while it was in flight. *)
              if (not t.crashed) && t.incarnation = inc && Hashtbl.mem t.indoubt txn then
                match answer with
                | Some (verdict, source) ->
                    (match source with
                    | By_coordinator ->
                        t.counters.indoubt_by_coordinator <-
                          t.counters.indoubt_by_coordinator + 1
                    | By_peer -> t.counters.indoubt_by_peer <- t.counters.indoubt_by_peer + 1);
                    if info.id_recovered then
                      t.counters.indoubt_recovered <- t.counters.indoubt_recovered + 1;
                    resolve_in_doubt t ~txn verdict;
                    (* Still in doubt means the commit record could not be
                       written (injected disk fault); retry once storage may
                       have healed. *)
                    if Hashtbl.mem t.indoubt txn then timers.after (retry_period t) step
                | None -> timers.after (retry_period t) step)
      in
      timers.after 0. step

(* Renew the transaction's lease (creating it on first contact). *)
let touch t ~txn =
  match (t.timers, t.lease) with
  | Some timers, Some lease -> (
      match Hashtbl.find_opt t.actives txn with
      | Some a -> a.deadline <- timers.now () +. lease
      | None ->
          let a = { deadline = timers.now () +. lease; prepared = false; coord = -1 } in
          Hashtbl.replace t.actives txn a;
          arm_lease_timer t ~txn ~at:a.deadline)
  | _ -> ()

(* Admission control, charged once per operation. The sliding window of
   recent admit times models the request queue of a server whose service is
   instantaneous in the simulation: its length is the backlog an arrival
   would join. At [cap] everything is pushed back ([Overloaded] — the client
   excludes this representative and re-collects its quorum elsewhere);
   from [shed_at] up, the breaker sheds [`Maintenance] work (anti-entropy
   transfers, keepalives) while still admitting quorum-critical operations.
   Termination traffic (prepare/commit/abort/outcome queries, notices) is
   never charged: shedding it would strand locks and in-doubt transactions,
   making the overload worse. Off (and free) unless both an [admission]
   policy and [timers] were configured. *)
let admission_charge t ~cls =
  match (t.admission, t.timers) with
  | Some adm, Some timers ->
      let now = timers.now () in
      while
        (not (Queue.is_empty t.arrivals)) && Queue.peek t.arrivals +. adm.window <= now
      do
        ignore (Queue.pop t.arrivals)
      done;
      let depth = Queue.length t.arrivals in
      if depth >= adm.cap then begin
        t.counters.overload_rejects <- t.counters.overload_rejects + 1;
        raise (Overloaded t.name)
      end;
      (match cls with
      | `Maintenance when depth >= adm.shed_at ->
          t.counters.shed_rejects <- t.counters.shed_rejects + 1;
          raise (Overloaded t.name)
      | `Maintenance | `Critical -> ());
      Queue.push now t.arrivals;
      t.counters.admitted <- t.counters.admitted + 1
  | _ -> ()

(* Deadline propagation's receiving end: work whose client-stamped absolute
   deadline has already passed is refused instead of executed — under
   overload the backlog's oldest (expired) requests are the ones dropped,
   which is what LIFO draining buys a real server. Needs a clock; without
   timers the stamp is ignored. *)
let reject_expired t ~deadline =
  check_alive t;
  match t.timers with
  | Some timers when timers.now () > deadline ->
      t.counters.expired_rejects <- t.counters.expired_rejects + 1;
      raise
        (Deadline_exceeded
           (Printf.sprintf "%s: deadline exceeded by %.1f" t.name (timers.now () -. deadline)))
  | _ -> ()

(* Every operation runs under this guard: a transaction the termination
   protocol has already decided (or holds in doubt) must not execute new
   operations — its retry/duplicate RPCs surface as aborts at the client. *)
let check_txn_open ?(cls = `Critical) t ~txn =
  check_alive t;
  admission_charge t ~cls;
  if Hashtbl.mem t.indoubt txn then
    raise (Txn.Abort (Txn.Unavailable (t.name ^ ": transaction is in doubt")));
  (match Hashtbl.find_opt t.outcomes txn with
  | Some _ -> raise (Txn.Abort (Txn.Unavailable (t.name ^ ": transaction already terminated")))
  | None -> ());
  touch t ~txn

(* Acquire a lock, blocking through the waiter if needed; a would-be deadlock
   unwinds as a transaction abort before anything is queued. The simulation
   is single-threaded and non-preemptive, so the grant callback cannot fire
   between [acquire] returning [Waiting] and the waiter installing the real
   wake-up function. A wait cancelled from outside (lease expiry terminating
   this very transaction) resumes through [on_drop] and unwinds as an abort. *)
let lock_blocking t ~txn mode range =
  let wake = ref ignore in
  let dropped = ref false in
  match
    Lock_manager.acquire t.locks ~txn
      ~on_drop:(fun () ->
        dropped := true;
        !wake ())
      mode range
      ~on_grant:(fun () -> !wake ())
  with
  | Lock_manager.Granted -> ()
  | Lock_manager.Deadlock cycle -> raise (Txn.Abort (Txn.Deadlock cycle))
  | Lock_manager.Waiting ->
      t.counters.lock_waits <- t.counters.lock_waits + 1;
      t.waiter (fun w -> wake := w);
      if !dropped then
        raise (Txn.Abort (Txn.Unavailable (t.name ^ ": transaction terminated while waiting")))

(* --- Figure 6 operations --------------------------------------------------- *)

let lookup t ~txn bound =
  check_txn_open t ~txn;
  t.counters.lookups <- t.counters.lookups + 1;
  lock_blocking t ~txn Mode.Rep_lookup (Bound.Interval.point bound);
  Btree.lookup t.map bound

(* Version-only read, for validating a client cache (a weak representative):
   same lock, same serialization point as [lookup] — only the reply sheds its
   payload. The version tag of a key is its entry's version when present, or
   its containing gap's version when absent, so a tag fully determines
   whether a cached entry (or cached absence) is still current. *)
type version_tag = Tag_entry of Version.t | Tag_gap of Version.t

let validate_one t ~txn bound =
  t.counters.validates <- t.counters.validates + 1;
  lock_blocking t ~txn Mode.Rep_lookup (Bound.Interval.point bound);
  match Btree.lookup t.map bound with
  | Repdir_gapmap.Gapmap_intf.Present { version; _ } -> Tag_entry version
  | Repdir_gapmap.Gapmap_intf.Absent { gap_version } -> Tag_gap gap_version

let validate_versions t ~txn bounds =
  check_txn_open t ~txn;
  List.map (validate_one t ~txn) bounds

(* DirRepPredecessor locks RepLookup(y, x) where y is the key returned — but
   y is only known after reading. We read, lock [y, x], and re-read; if a
   concurrent transaction changed the predecessor before our lock was
   granted, retry with the wider knowledge. Under strict 2PL the loop
   terminates: each iteration's lock is kept, monotonically freezing a wider
   range of the key space. *)
let predecessor t ~txn bound =
  check_txn_open t ~txn;
  t.counters.predecessors <- t.counters.predecessors + 1;
  let rec stabilize () =
    let candidate = Btree.predecessor t.map bound in
    lock_blocking t ~txn Mode.Rep_lookup (Bound.Interval.make candidate.key bound);
    let now = Btree.predecessor t.map bound in
    if Bound.equal now.key candidate.key then now else stabilize ()
  in
  stabilize ()

let successor t ~txn bound =
  check_txn_open t ~txn;
  t.counters.successors <- t.counters.successors + 1;
  let rec stabilize () =
    let candidate = Btree.successor t.map bound in
    lock_blocking t ~txn Mode.Rep_lookup (Bound.Interval.make bound candidate.key);
    let now = Btree.successor t.map bound in
    if Bound.equal now.key candidate.key then now else stabilize ()
  in
  stabilize ()

(* Batched walks (§4): read a chain of successive neighbours, lock the whole
   span, and re-read to validate — the same stabilize pattern as the single-
   step operations. *)
let read_pred_chain t bound ~depth =
  let rec go acc k remaining =
    if remaining = 0 || Bound.equal k Bound.Low then List.rev acc
    else
      let n = Btree.predecessor t.map k in
      go (n :: acc) n.key (remaining - 1)
  in
  go [] bound depth

let predecessor_chain t ~txn bound ~depth =
  if depth <= 0 then invalid_arg "Rep.predecessor_chain: depth must be positive";
  if Bound.equal bound Bound.Low then invalid_arg "Rep.predecessor_chain: LOW";
  t.counters.predecessors <- t.counters.predecessors + 1;
  check_txn_open t ~txn;
  let rec stabilize () =
    let chain = read_pred_chain t bound ~depth in
    let lowest =
      match List.rev chain with [] -> bound | last :: _ -> last.key
    in
    lock_blocking t ~txn Mode.Rep_lookup (Bound.Interval.make lowest bound);
    let now = read_pred_chain t bound ~depth in
    if now = chain then chain (* nearest predecessor first, keys descending *)
    else stabilize ()
  in
  stabilize ()

let read_succ_chain t bound ~depth =
  let rec go acc k remaining =
    if remaining = 0 || Bound.equal k Bound.High then List.rev acc
    else
      let n = Btree.successor t.map k in
      go (n :: acc) n.key (remaining - 1)
  in
  go [] bound depth

let successor_chain t ~txn bound ~depth =
  if depth <= 0 then invalid_arg "Rep.successor_chain: depth must be positive";
  if Bound.equal bound Bound.High then invalid_arg "Rep.successor_chain: HIGH";
  t.counters.successors <- t.counters.successors + 1;
  check_txn_open t ~txn;
  let rec stabilize () =
    let chain = read_succ_chain t bound ~depth in
    let highest = match List.rev chain with [] -> bound | last :: _ -> last.key in
    lock_blocking t ~txn Mode.Rep_lookup (Bound.Interval.make bound highest);
    let now = read_succ_chain t bound ~depth in
    if now = chain then chain else stabilize ()
  in
  stabilize ()

let insert t ~txn key version value =
  check_txn_open t ~txn;
  t.counters.inserts <- t.counters.inserts + 1;
  lock_blocking t ~txn Mode.Rep_modify (Bound.Interval.point (Bound.Key key));
  (* Log first: a refused append (injected disk fault) must abort before the
     undo log or the map record any trace of this operation. *)
  wal_append_or_abort t (Wal.Insert (txn, key, version, value));
  (match Btree.lookup t.map (Bound.Key key) with
  | Present { version = old_version; value = old_value } ->
      Undo.record t.undo ~txn (Undo.Restore_entry (key, old_version, old_value))
  | Absent _ -> Undo.record t.undo ~txn (Undo.Remove_entry key));
  Btree.insert t.map key version value

let gap_after t bound =
  (* Version of the gap immediately following an entry or LOW. *)
  (Btree.successor t.map bound).gap_version

let endpoint_exists t = function
  | Bound.Low | Bound.High -> true
  | Bound.Key _ as b -> (
      match Btree.lookup t.map b with
      | Repdir_gapmap.Gapmap_intf.Present _ -> true
      | Repdir_gapmap.Gapmap_intf.Absent _ -> false)

let coalesce t ~txn ~lo ~hi version =
  check_txn_open t ~txn;
  t.counters.coalesces <- t.counters.coalesces + 1;
  lock_blocking t ~txn Mode.Rep_modify (Bound.Interval.make lo hi);
  (* Validate the endpoints before logging anything: a failed coalesce must
     leave both the undo log and the write-ahead log untouched. *)
  if not (endpoint_exists t lo) then raise (Repdir_gapmap.Gapmap_intf.Missing_endpoint lo);
  if not (endpoint_exists t hi) then raise (Repdir_gapmap.Gapmap_intf.Missing_endpoint hi);
  wal_append_or_abort t (Wal.Coalesce (txn, lo, hi, version));
  (* Record the inverse before destroying anything. Application order on
     rollback (most-recent-first) must be: re-insert every removed entry,
     then restore every gap version (including lo's). So record gap
     restorations first, newest-last entry re-insertions after. *)
  let doomed = Btree.entries_between t.map ~lo ~hi in
  let old_lo_gap = gap_after t lo in
  Undo.record t.undo ~txn (Undo.Restore_gap (lo, old_lo_gap));
  List.iter
    (fun (k, _, _, g) -> Undo.record t.undo ~txn (Undo.Restore_gap (Bound.Key k, g)))
    doomed;
  List.iter
    (fun (k, v, value, _) -> Undo.record t.undo ~txn (Undo.Restore_entry (k, v, value)))
    doomed;
  Btree.coalesce t.map ~lo ~hi version

(* --- anti-entropy endpoints -------------------------------------------------- *)

module Gm = Repdir_gapmap.Gapmap_intf

let digest_range t ~txn ~lo ~hi =
  check_txn_open ~cls:`Maintenance t ~txn;
  t.counters.digests <- t.counters.digests + 1;
  lock_blocking t ~txn Mode.Rep_lookup (Bound.Interval.make lo hi);
  Btree.digest_range t.map ~lo ~hi

let digest_interior_range t ~txn ~lo ~hi =
  check_txn_open ~cls:`Maintenance t ~txn;
  t.counters.digests <- t.counters.digests + 1;
  lock_blocking t ~txn Mode.Rep_lookup (Bound.Interval.make lo hi);
  Btree.digest_interior_range t.map ~lo ~hi

let split_range t ~txn ~lo ~hi ~arity =
  check_txn_open ~cls:`Maintenance t ~txn;
  lock_blocking t ~txn Mode.Rep_lookup (Bound.Interval.make lo hi);
  Btree.split_range t.map ~lo ~hi ~arity

let pull_range t ~txn ~lo ~hi =
  check_txn_open ~cls:`Maintenance t ~txn;
  t.counters.pulls <- t.counters.pulls + 1;
  lock_blocking t ~txn Mode.Rep_lookup (Bound.Interval.make lo hi);
  Btree.pull_range t.map ~lo ~hi

let apply_range t ~txn (tr : Gm.transfer) =
  check_txn_open ~cls:`Maintenance t ~txn;
  t.counters.sync_applies <- t.counters.sync_applies + 1;
  lock_blocking t ~txn Mode.Rep_modify (Bound.Interval.make tr.t_lo tr.t_hi);
  let plan = Btree.plan_transfer t.map tr in
  if plan.ops = [] then { Gm.empty_applied with ghosts_kept = plan.ghosts_kept }
  else begin
    (* One redo record for the whole plan; it replays by re-running the ops
       in order, so it must be logged before any of them mutates the map. *)
    wal_append_or_abort t (Wal.Sync_apply (txn, plan.ops));
    let applied = ref { Gm.empty_applied with ghosts_kept = plan.ghosts_kept } in
    List.iter
      (fun op ->
        (* Record each op's inverse against the map as it stands right now;
           rollback applies inverses most-recent-first, so each one meets
           exactly the state its op produced. *)
        (match op with
        | Gm.Sync_put (k, _, _) -> (
            match Btree.lookup t.map (Bound.Key k) with
            | Present { version; value } ->
                applied := { !applied with updated = !applied.updated + 1 };
                Undo.record t.undo ~txn (Undo.Restore_entry (k, version, value))
            | Absent _ ->
                applied := { !applied with installed = !applied.installed + 1 };
                Undo.record t.undo ~txn (Undo.Remove_entry k))
        | Gm.Sync_gap (b, _) ->
            applied := { !applied with gaps_raised = !applied.gaps_raised + 1 };
            Undo.record t.undo ~txn (Undo.Restore_gap (b, gap_after t b))
        | Gm.Sync_del k -> (
            applied := { !applied with deleted = !applied.deleted + 1 };
            match Btree.lookup t.map (Bound.Key k) with
            | Present { version; value } ->
                (* Rollback order (LIFO): re-insert the entry, then restore
                   the version of the gap that followed it. *)
                Undo.record t.undo ~txn (Undo.Restore_gap (Bound.Key k, gap_after t (Bound.Key k)));
                Undo.record t.undo ~txn (Undo.Restore_entry (k, version, value))
            | Absent _ -> assert false));
        Btree.apply_sync_op t.map op)
      plan.ops;
    !applied
  end

let root_digest t =
  check_alive t;
  Btree.digest_range t.map ~lo:Bound.Low ~hi:Bound.High

(* A lease heartbeat for long-running sessions: [check_txn_open] touches the
   lease (creating it on first contact) and rejects already-terminated
   transactions, which is exactly the contract. *)
let keepalive t ~txn = check_txn_open ~cls:`Maintenance t ~txn

(* --- transaction boundary --------------------------------------------------- *)

let prepare t ~txn ~coord =
  check_alive t;
  if Hashtbl.mem t.indoubt txn then () (* duplicate: the yes vote is already durable *)
  else
    match Hashtbl.find_opt t.outcomes txn with
    | Some `Aborted ->
        (* Typically a unilateral lease abort beat the coordinator's prepare:
           the no vote is final, the coordinator must decide abort. *)
        raise (Txn.Abort (Txn.Unavailable (t.name ^ " already aborted the transaction")))
    | Some `Committed -> () (* duplicate prepare after a delivered commit *)
    | None ->
        (* Refuse to vote for a transaction whose effects here predate our
           last crash: the volatile state (including the in-memory results of
           those operations) is gone, so committing would half-apply the
           transaction. *)
        if Wal.ops_before_last_recovery t.wal txn then
          raise
            (Txn.Abort (Txn.Unavailable (t.name ^ " lost the transaction's effects in a crash")));
        (* A refused append is a no vote: raising here makes the coordinator
           decide abort, which is exactly what a disk-full participant
           wants. *)
        wal_append_or_abort t (Wal.Prepare (txn, coord));
        (* Force the log before voting yes: a prepared transaction's effects
           must survive any crash, since the coordinator may decide to
           commit. *)
        force_wal t;
        (* From here the vote binds: a later lease expiry must turn into
           in-doubt resolution against this coordinator, never a unilateral
           abort. *)
        touch t ~txn;
        (match Hashtbl.find_opt t.actives txn with
        | Some a ->
            a.prepared <- true;
            a.coord <- coord
        | None ->
            (* No lease machinery armed a record for this transaction; the
               binding vote must be visible anyway (a read-only finish may
               never discard a prepared transaction). *)
            Hashtbl.replace t.actives txn { deadline = infinity; prepared = true; coord })

let commit t ~txn =
  check_alive t;
  match Hashtbl.find_opt t.outcomes txn with
  | Some `Committed -> () (* duplicate delivery: commit is idempotent *)
  | Some `Aborted ->
      raise (Txn.Abort (Txn.Unavailable (t.name ^ " already aborted the transaction")))
  | None ->
      if Hashtbl.mem t.indoubt txn then begin
        Hashtbl.remove t.actives txn;
        resolve_in_doubt t ~txn `Committed
      end
      else begin
        (* The commit record must be durable before anything is released; a
           refused append (injected disk fault) leaves the transaction open —
           prepared votes stay binding and a retry or the termination
           protocol commits it once storage heals. *)
        wal_append_or_abort t (Wal.Commit txn);
        Hashtbl.remove t.actives txn;
        Hashtbl.replace t.outcomes txn `Committed;
        (* Force the commit record before acknowledging — an acknowledged
           commit can never be lost to a torn tail. *)
        force_wal t;
        Undo.forget t.undo ~txn;
        Lock_manager.release_all t.locks ~txn
      end

let abort t ~txn =
  check_alive t;
  match Hashtbl.find_opt t.outcomes txn with
  | Some `Aborted -> () (* duplicate delivery: abort is idempotent *)
  | Some `Committed ->
      raise (Txn.Abort (Txn.Unavailable (t.name ^ " already committed the transaction")))
  | None ->
      Hashtbl.remove t.actives txn;
      if Hashtbl.mem t.indoubt txn then resolve_in_doubt t ~txn `Aborted
      else begin
        Hashtbl.replace t.outcomes txn `Aborted;
        (* Presumed abort: losing the abort record to an injected storage
           failure is harmless, so the rollback proceeds regardless. *)
        ignore (Wal.try_append t.wal (Wal.Abort txn) : (unit, Wal.io_fault) result);
        Undo_apply.rollback t.undo ~txn t.map;
        Lock_manager.release_all t.locks ~txn
      end

(* --- batched execution -------------------------------------------------------- *)

(* DirSuiteDelete repairs a quorum member by copying the real neighbour in
   only when the member lacks it; batching fuses the existence check and the
   conditional copy into one op so the whole repair fits in one message. *)
let insert_if_absent t ~txn key version value =
  check_txn_open t ~txn;
  lock_blocking t ~txn Mode.Rep_modify (Bound.Interval.point (Bound.Key key));
  match Btree.lookup t.map (Bound.Key key) with
  | Gm.Present _ -> false
  | Gm.Absent _ ->
      t.counters.inserts <- t.counters.inserts + 1;
      wal_append_or_abort t (Wal.Insert (txn, key, version, value));
      Undo.record t.undo ~txn (Undo.Remove_entry key);
      Btree.insert t.map key version value;
      true

(* Release a transaction that did no work here, without recording an
   outcome. Server-authoritative: the client *believes* the transaction is
   read-only, but only this representative knows (its undo log is empty iff
   no operation wrote here), and a prepared vote or an in-doubt state always
   wins. Refusals return false and the client falls back to the normal
   termination round. No outcome is recorded because this representative's
   vote was never collected: answering a peer's termination query with a
   definite verdict here could contradict the coordinator's decision. *)
let finish_readonly t ~txn =
  check_alive t;
  if Hashtbl.mem t.indoubt txn then false
  else
    match Hashtbl.find_opt t.outcomes txn with
    | Some _ -> false
    | None ->
        let prepared =
          match Hashtbl.find_opt t.actives txn with Some a -> a.prepared | None -> false
        in
        if prepared || Undo.actions t.undo ~txn <> [] then false
        else begin
          t.counters.readonly_finishes <- t.counters.readonly_finishes + 1;
          Hashtbl.remove t.actives txn;
          Lock_manager.release_all t.locks ~txn;
          true
        end

type batch_op =
  | B_lookup of Bound.t
  | B_validate of Bound.t
  | B_predecessor of Bound.t
  | B_successor of Bound.t
  | B_predecessor_chain of Bound.t * int
  | B_successor_chain of Bound.t * int
  | B_insert of Key.t * Version.t * Gm.value
  | B_insert_if_absent of Key.t * Version.t * Gm.value
  | B_coalesce of Bound.t * Bound.t * Version.t
  | B_prepare of int
  | B_finish_readonly

type batch_result =
  | R_lookup of Gm.lookup
  | R_tag of version_tag
  | R_neighbor of Gm.neighbor
  | R_chain of Gm.neighbor list
  | R_unit
  | R_inserted of bool
  | R_removed of int
  | R_finished of bool

type notice = N_commit of Txn.id | N_abort of Txn.id

(* Deferred termination records for *other* transactions, piggybacked on a
   later message to this representative. Commit and abort are idempotent; a
   conflicting-outcome abort means the termination protocol already settled
   the transaction, so the notice is stale and dropped. *)
let deliver_notice t n =
  t.counters.notices_applied <- t.counters.notices_applied + 1;
  match n with
  | N_commit txn -> ( try commit t ~txn with Txn.Abort _ -> ())
  | N_abort txn -> ( try abort t ~txn with Txn.Abort _ -> ())

let deliver_notices t ns =
  check_alive t;
  List.iter (deliver_notice t) ns

let run_batch_op t ~txn op =
  t.counters.batch_ops <- t.counters.batch_ops + 1;
  match op with
  | B_lookup b -> R_lookup (lookup t ~txn b)
  | B_validate b -> (
      match validate_versions t ~txn [ b ] with
      | [ tag ] -> R_tag tag
      | _ -> assert false)
  | B_predecessor b -> R_neighbor (predecessor t ~txn b)
  | B_successor b -> R_neighbor (successor t ~txn b)
  | B_predecessor_chain (b, depth) -> R_chain (predecessor_chain t ~txn b ~depth)
  | B_successor_chain (b, depth) -> R_chain (successor_chain t ~txn b ~depth)
  | B_insert (k, v, value) ->
      insert t ~txn k v value;
      R_unit
  | B_insert_if_absent (k, v, value) -> R_inserted (insert_if_absent t ~txn k v value)
  | B_coalesce (lo, hi, v) -> R_removed (coalesce t ~txn ~lo ~hi v)
  | B_prepare coord ->
      prepare t ~txn ~coord;
      R_unit
  | B_finish_readonly -> R_finished (finish_readonly t ~txn)

(* One message, many ops: run them strictly in list order and return per-op
   results. The first failure propagates and abandons the rest; earlier ops
   keep their effects (covered by the transaction's locks) and are cleaned
   up by the transaction's abort, exactly as if each op had been its own
   RPC. *)
let execute t ~txn ops =
  check_alive t;
  t.counters.batches <- t.counters.batches + 1;
  List.rev (List.fold_left (fun acc op -> run_batch_op t ~txn op :: acc) [] ops)

(* What this representative knows about a transaction's fate — the answer it
   gives a peer's termination query. [`Committed] implies the coordinator
   logged a commit decision; [`Aborted] implies either a coordinator abort
   decision or a unilateral abort taken while unprepared, after which this
   rep refuses every prepare, so the coordinator can never commit. Both are
   therefore final. [`Unknown] is always safe — the asker just keeps
   trying. *)
let outcome_of t txn =
  check_alive t;
  match Hashtbl.find_opt t.outcomes txn with
  | Some `Committed -> `Committed
  | Some `Aborted -> `Aborted
  | None -> `Unknown

let in_doubt_txns t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.indoubt [] |> List.sort compare

let in_doubt_count t = Hashtbl.length t.indoubt
let locks_held t = Lock_manager.granted_count t.locks
let lock_waiters t = Lock_manager.waiting_count t.locks
let admission_depth t = Queue.length t.arrivals

(* --- crash and recovery ------------------------------------------------------ *)

let crash t =
  t.crashed <- true;
  (* Wake anyone blocked in a group-commit window; they re-check the crash
     flag on resume and unwind as [Crashed]. *)
  Wal.Group.settle t.group Wal.Group.Cancelled;
  t.map <- Btree.create_with ~branching:t.branching ();
  Lock_manager.detach t.locks;
  t.locks <- Lock_manager.create ~group:t.lock_group ();
  t.undo <- Undo.create ();
  (* All volatile transaction state dies with the incarnation; recovery
     rebuilds outcomes and the in-doubt set from the log. *)
  Hashtbl.reset t.actives;
  Hashtbl.reset t.outcomes;
  Hashtbl.reset t.indoubt;
  Queue.clear t.arrivals;
  (* The epoch caches are volatile too; recovery restores them from the log. *)
  t.m_epoch <- 0;
  t.m_record <- "";
  t.s_epoch <- 0;
  t.s_record <- ""

let is_crashed t = t.crashed
let incarnation t = t.incarnation

let inject_storage_fault t fault = Wal.inject t.wal fault
let set_io_fault t f = Wal.set_io_fault t.wal f
let io_fault t = Wal.io_fault t.wal

let wal_records_repaired t = t.wal_records_repaired

let recover t =
  (* First scrub stable storage: a crash may have torn or corrupted the log
     tail, and everything from the first bad frame on is unreadable. What
     survives is a prefix of history; committed-only replay below then
     reconstructs exactly the committed prefix. *)
  t.wal_records_repaired <- t.wal_records_repaired + Wal.repair t.wal;
  let restored = Wal.in_doubt t.wal in
  (* Replay the committed state only: a prepared-but-undecided transaction's
     effects are withheld from the map until the termination protocol learns
     its outcome. Deciding it here (say, auto-abort) would be unsound — the
     coordinator may have logged a commit we never saw delivered. *)
  t.map <- Wal_replay.replay t.wal;
  Lock_manager.detach t.locks;
  t.locks <- Lock_manager.create ~group:t.lock_group ();
  t.undo <- Undo.create ();
  Hashtbl.reset t.actives;
  Hashtbl.reset t.outcomes;
  Hashtbl.reset t.indoubt;
  List.iter
    (function
      | Wal.Commit id -> Hashtbl.replace t.outcomes id `Committed
      | Wal.Abort id -> Hashtbl.replace t.outcomes id `Aborted
      | _ -> ())
    (Wal.records t.wal);
  t.crashed <- false;
  t.incarnation <- t.incarnation + 1;
  (* Resume fencing at the newest durably installed membership epoch. The
     installation forced the log, so repair cannot have dropped it. *)
  (match Wal.last_member_epoch t.wal with
  | Some (ep, record) ->
      t.m_epoch <- ep;
      t.m_record <- record
  | None ->
      t.m_epoch <- 0;
      t.m_record <- "");
  (match Wal.last_shard_epoch t.wal with
  | Some (ep, record) ->
      t.s_epoch <- ep;
      t.s_record <- record
  | None ->
      t.s_epoch <- 0;
      t.s_record <- "");
  (* Restore each in-doubt transaction: re-hold its write locks so the
     withheld effects stay isolated (writers to those ranges block, nothing
     else does), and hand it to the termination protocol. Its redo records
     are applied iff the verdict is commit. *)
  List.iter
    (fun (txn, coord) ->
      List.iter
        (fun range -> Lock_manager.reacquire t.locks ~txn Mode.Rep_modify range)
        (Wal.write_ranges t.wal txn);
      Hashtbl.replace t.indoubt txn { id_coord = coord; id_recovered = true };
      start_resolution t ~txn)
    restored;
  Wal.append t.wal Wal.Recovery_marker;
  Wal.sync t.wal

let checkpoint t =
  check_alive t;
  if Undo.active_txns t.undo <> [] || Lock_manager.granted_count t.locks > 0 then
    invalid_arg "Rep.checkpoint: transactions are active";
  let cp = Wal.checkpoint_of_map (Btree.entries t.map) ~gaps:(Btree.gaps t.map) in
  Wal.append t.wal (Wal.Checkpoint cp);
  Wal.truncate_to_checkpoint t.wal;
  (* Truncation dropped any pre-checkpoint [Member_epoch]/[Shard_epoch]
     record; the fences must survive the next crash, so re-log them. *)
  if t.m_epoch > 0 then begin
    Wal.append t.wal (Wal.Member_epoch (t.m_epoch, t.m_record));
    Wal.sync t.wal
  end;
  if t.s_epoch > 0 then begin
    Wal.append t.wal (Wal.Shard_epoch (t.s_epoch, t.s_record));
    Wal.sync t.wal
  end

let wal_length t = Wal.length t.wal
let wal_unsynced t = Wal.length t.wal - Wal.synced_length t.wal

(* --- inspection --------------------------------------------------------------- *)

let entries t = Btree.entries t.map
let gaps t = Btree.gaps t.map
let check_invariants t = Btree.check_invariants t.map
let active_txn_count t = Hashtbl.length t.actives

(* Quiesce-time deep self-check, for the replica scrubber: the gap map's
   structural invariants (entries and gaps exactly tile [LOW, HIGH] with the
   B+tree shape intact), and — when no transaction is active or in doubt —
   the live map must equal a fresh committed-only replay of the write-ahead
   log. Replay equality subsumes version monotonicity with respect to the
   WAL: any version the log never justified, or any committed effect the map
   lost, shows up as a divergence. *)
let scrub t =
  check_alive t;
  let problems = ref [] in
  let add fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  (match Btree.check_invariants t.map with
  | Ok () -> ()
  | Error e -> add "%s: gap-map invariant: %s" t.name e);
  if Hashtbl.length t.actives = 0 && Hashtbl.length t.indoubt = 0 && Undo.active_txns t.undo = []
  then begin
    let replayed = Wal_replay.replay t.wal in
    let live_entries = Btree.entries t.map and wal_entries = Btree.entries replayed in
    if live_entries <> wal_entries then
      add "%s: live entries diverge from WAL replay (%d live, %d replayed)" t.name
        (List.length live_entries) (List.length wal_entries);
    let live_gaps = Btree.gaps t.map and wal_gaps = Btree.gaps replayed in
    if live_gaps <> wal_gaps then
      add "%s: live gap versions diverge from WAL replay" t.name
  end;
  List.rev !problems

let pp ppf t = Format.fprintf ppf "%s: %a" t.name Btree.pp t.map
